package live

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/block"
	"repro/internal/match"
	"repro/internal/model"
	"repro/internal/race"
	"repro/internal/sim"
)

var (
	dblpPub = model.LDS{Source: "DBLP", Type: model.Publication}
	acmPub  = model.LDS{Source: "ACM", Type: model.Publication}
)

// syntheticSets builds two noisy publication sets with overlapping titles,
// mirroring the fixtures of the match package tests.
func syntheticSets(n int) (queries, set *model.ObjectSet) {
	topics := []string{
		"generic schema matching with cupid",
		"a formal perspective on the view selection problem",
		"mapping based object matching for data integration",
		"entity resolution over heterogeneous web data sources",
		"adaptive blocking techniques for scalable record linkage",
		"similarity joins for near duplicate detection",
	}
	queries = model.NewObjectSet(dblpPub)
	set = model.NewObjectSet(acmPub)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < n; i++ {
		topic := topics[i%len(topics)]
		queries.AddNew(model.ID(fmt.Sprintf("d%03d", i)), map[string]string{
			"title":   fmt.Sprintf("%s part %d", topic, i/len(topics)),
			"authors": fmt.Sprintf("author %c thor", 'a'+byte(i%7)),
			"year":    fmt.Sprintf("%d", 1994+i%10),
		})
		title := fmt.Sprintf("%s part %d", topic, i/len(topics))
		if rng.Intn(3) == 0 {
			title += " revised"
		}
		set.AddNew(model.ID(fmt.Sprintf("g%03d", i)), map[string]string{
			"name":    title,
			"authors": fmt.Sprintf("author %c thor", 'a'+byte((i+1)%7)),
			"year":    fmt.Sprintf("%d", 1994+i%10),
		})
	}
	return queries, set
}

func testConfig() Config {
	return Config{
		MinShared: 2,
		Threshold: 0.5,
		Columns: []Column{
			{QueryAttr: "title", SetAttr: "name", Sim: sim.Trigram, Weight: 3},
			{QueryAttr: "authors", SetAttr: "authors", Sim: sim.TokenJaccard, Weight: 1},
			{QueryAttr: "year", SetAttr: "year", Sim: sim.YearSim, Weight: 2},
		},
	}
}

// batchMatcher is the batch twin of testConfig: identical blocking, columns,
// weights and threshold.
func batchMatcher(cfg Config) *match.MultiAttribute {
	pairs := make([]match.AttrPair, len(cfg.Columns))
	for i, c := range cfg.Columns {
		pairs[i] = match.AttrPair{AttrA: c.QueryAttr, AttrB: c.SetAttr, Sim: c.Sim, Weight: c.Weight}
	}
	return &match.MultiAttribute{
		MatcherName: "batch-twin",
		Pairs:       pairs,
		Threshold:   cfg.Threshold,
		Blocker: block.TokenBlocking{
			AttrA:     cfg.Columns[0].QueryAttr,
			AttrB:     cfg.Columns[0].SetAttr,
			MinShared: cfg.MinShared,
		},
		Workers: 1,
	}
}

// TestResolveMatchesBatch pins the core equivalence: resolving a query set
// record-by-record against a Resolver equals a batch match, bit-identically
// including correspondence insertion order.
func TestResolveMatchesBatch(t *testing.T) {
	queries, set := syntheticSets(120)
	cfg := testConfig()
	r, err := NewResolver(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	online, err := r.ResolveSet(queries)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := batchMatcher(cfg).Match(queries, set)
	if err != nil {
		t.Fatal(err)
	}
	if online.Len() == 0 {
		t.Fatal("fixture produced no matches; fixture broken")
	}
	if !reflect.DeepEqual(online.Correspondences(), batch.Correspondences()) {
		t.Fatalf("online mapping diverges from batch:\nonline %v\nbatch  %v", online, batch)
	}
}

// TestIncrementalAddMatchesBatch is the differential incremental-correctness
// test of the PR: a Resolver seeded with a prefix of the set and grown by N
// incremental Adds must resolve exactly like a batch re-match against the
// full set — same correspondences, same similarities (eps 0), same order.
func TestIncrementalAddMatchesBatch(t *testing.T) {
	queries, set := syntheticSets(150)
	cfg := testConfig()

	ids := set.IDs()
	seed := set.Subset(ids[:50])
	r, err := NewResolver(seed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids[50:] {
		if err := r.Add(set.Get(id)); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != set.Len() {
		t.Fatalf("resolver holds %d instances, want %d", r.Len(), set.Len())
	}

	online, err := r.ResolveSet(queries)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := batchMatcher(cfg).Match(queries, set)
	if err != nil {
		t.Fatal(err)
	}
	if !online.Equal(batch, 0) {
		t.Fatalf("incremental resolver diverges from batch re-match (eps 0):\nonline %v\nbatch  %v", online, batch)
	}
	if !reflect.DeepEqual(online.Correspondences(), batch.Correspondences()) {
		t.Fatal("correspondence insertion order diverges from batch")
	}
}

// TestRemoveMatchesRebuild: removing instances must resolve like a fresh
// resolver over the surviving subset.
func TestRemoveMatchesRebuild(t *testing.T) {
	queries, set := syntheticSets(100)
	cfg := testConfig()
	r, err := NewResolver(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids := set.IDs()
	removed := map[model.ID]bool{}
	for i, id := range ids {
		if i%3 == 0 {
			if !r.Remove(id) {
				t.Fatalf("Remove(%s) = false, want true", id)
			}
			removed[id] = true
		}
	}
	if r.Remove("nonexistent") {
		t.Fatal("Remove of unknown id must report false")
	}
	survivors := set.Filter(func(in *model.Instance) bool { return !removed[in.ID] })
	fresh, err := NewResolver(survivors, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ResolveSet(queries)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.ResolveSet(queries)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 0) {
		t.Fatalf("post-remove resolver diverges from rebuild:\ngot %v\nwant %v", got, want)
	}
	for _, c := range got.Correspondences() {
		if removed[c.Range] {
			t.Fatalf("removed instance %s still matches", c.Range)
		}
	}
}

// TestAddReplace: re-adding a live id replaces its attributes in place.
func TestAddReplace(t *testing.T) {
	_, set := syntheticSets(30)
	cfg := testConfig()
	r, err := NewResolver(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	victim := set.IDs()[0]
	q := model.NewInstance("q", map[string]string{
		"title": "an entirely fresh replacement title", "authors": "author x", "year": "2001",
	})
	if got := r.Resolve(q); len(got) != 0 {
		t.Fatalf("fresh title must not match yet, got %v", got)
	}
	repl := model.NewInstance(victim, map[string]string{
		"name": "an entirely fresh replacement title", "authors": "author x", "year": "2001",
	})
	if err := r.Add(repl); err != nil {
		t.Fatal(err)
	}
	if r.Len() != set.Len() {
		t.Fatalf("replace must not grow the live count: %d != %d", r.Len(), set.Len())
	}
	got := r.Resolve(q)
	if len(got) != 1 || got[0].ID != victim {
		t.Fatalf("replacement must match the query, got %v", got)
	}
}

// TestAddResolveDelta: AddResolve returns the matches against the members
// present before the add — the same-mapping delta of the arrival — and the
// instance is live afterwards.
func TestAddResolveDelta(t *testing.T) {
	lds := acmPub
	set := model.NewObjectSet(lds)
	set.AddNew("g1", map[string]string{"name": "the view selection problem", "authors": "thor", "year": "2000"})
	// Query and set schemas deliberately differ: arrivals are member records
	// and must be read under the set-side attribute names.
	r, err := NewResolver(set, Config{
		MinShared: 1,
		Threshold: 0.6,
		Columns:   []Column{{QueryAttr: "title", SetAttr: "name", Sim: sim.Trigram}},
	})
	if err != nil {
		t.Fatal(err)
	}
	dup := model.NewInstance("g2", map[string]string{"name": "the view selection problem", "authors": "thor", "year": "2000"})
	matches, err := r.AddResolve(dup)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].ID != "g1" || matches[0].Sim != 1 {
		t.Fatalf("arrival delta = %v, want exact duplicate of g1", matches)
	}
	if !r.Has("g2") {
		t.Fatal("instance must be live after AddResolve")
	}
	// A second identical arrival now sees both.
	matches, err = r.AddResolve(model.NewInstance("g3", dup.Attrs))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 {
		t.Fatalf("second arrival delta = %v, want 2 matches", matches)
	}
	// Re-adding a live id is a replace: it must not match its own previous
	// version, only its peers.
	matches, err = r.AddResolve(model.NewInstance("g3", dup.Attrs))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		if m.ID == "g3" {
			t.Fatalf("replaced instance matched its own stale self: %v", matches)
		}
	}
	if len(matches) != 2 {
		t.Fatalf("replace delta = %v, want the 2 peers", matches)
	}
	if r.Len() != 3 {
		t.Fatalf("live count after replace = %d, want 3", r.Len())
	}
}

// TestTFIDFIncrementalMatchesRebuild: corpus-backed columns stay exact under
// incremental Add/Remove — the corpus document frequencies and all resident
// vectors equal a from-scratch build at every step.
func TestTFIDFIncrementalMatchesRebuild(t *testing.T) {
	queries, set := syntheticSets(60)
	cfg := Config{
		MinShared: 1,
		Threshold: 0.3,
		Columns:   []Column{{QueryAttr: "title", SetAttr: "name", TFIDF: true}},
	}
	ids := set.IDs()
	r, err := NewResolver(set.Subset(ids[:20]), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids[20:] {
		if err := r.Add(set.Get(id)); err != nil {
			t.Fatal(err)
		}
	}
	for i, id := range ids {
		if i%4 == 0 {
			r.Remove(id)
		}
	}
	survivors := set.Filter(func(in *model.Instance) bool {
		i := set.IndexOf(in.ID)
		return i%4 != 0
	})
	fresh, err := NewResolver(survivors, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ResolveSet(queries)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.ResolveSet(queries)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() == 0 {
		t.Fatal("tf-idf fixture produced no matches; fixture broken")
	}
	if !got.Equal(want, 0) {
		t.Fatalf("incremental tf-idf resolver diverges from rebuild:\ngot %v\nwant %v", got, want)
	}
}

// TestResolveDoesNotGrowDictionaries pins the read-side interning contract:
// resolving queries full of never-seen tokens must leave both the
// resolver's private blocking dictionary and the process-global term
// dictionary exactly as large as the registered data left them — for
// profiled token measures and corpus-backed TF-IDF columns alike.
func TestResolveDoesNotGrowDictionaries(t *testing.T) {
	_, set := syntheticSets(40)
	cfg := testConfig()
	cfg.Columns = append(cfg.Columns, Column{QueryAttr: "title", SetAttr: "name", TFIDF: true, Weight: 1})
	r, err := NewResolver(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	globalBefore, privBefore := sim.Terms.Len(), r.dict.Len()
	for i := 0; i < 50; i++ {
		q := model.NewInstance("q", map[string]string{
			"title":   fmt.Sprintf("view selection qgrow%04da qgrow%04db never interned", i, i),
			"authors": fmt.Sprintf("qgrow%04dc thor", i),
			"year":    "2001",
		})
		r.Resolve(q)
	}
	if got := sim.Terms.Len(); got != globalBefore {
		t.Fatalf("Resolve grew the global dictionary %d -> %d", globalBefore, got)
	}
	if got := r.dict.Len(); got != privBefore {
		t.Fatalf("Resolve grew the resolver dictionary %d -> %d", privBefore, got)
	}
}

// TestChurnCompaction is the bounded-memory test of slot compaction: 10k
// add/remove cycles against a small live set must keep the slot count (and
// thus every per-slot array) proportional to the live size, not to the
// churn history — and the compacted resolver must keep resolving exactly
// like a fresh build over the same members.
func TestChurnCompaction(t *testing.T) {
	queries, set := syntheticSets(60)
	cfg := testConfig()
	r, err := NewResolver(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	live := set.Len()
	maxSlots := 0
	for cycle := 0; cycle < 10000; cycle++ {
		id := model.ID(fmt.Sprintf("churn%05d", cycle))
		if err := r.Add(model.NewInstance(id, map[string]string{
			"name": fmt.Sprintf("churning title number %d revision", cycle%97),
			"year": "2001",
		})); err != nil {
			t.Fatal(err)
		}
		if !r.Remove(id) {
			t.Fatalf("cycle %d: Remove(%s) = false", cycle, id)
		}
		if st := r.Stats(); st.Slots > maxSlots {
			maxSlots = st.Slots
		}
	}
	// The compaction trigger fires once tombstones exceed the live count
	// (past the compactMinDead floor), so slots may transiently reach
	// 2*live+compactMinDead but never grow with the 10k-cycle history.
	if bound := 2*live + 2*compactMinDead; maxSlots > bound {
		t.Fatalf("slots reached %d under churn, want <= %d (live %d)", maxSlots, bound, live)
	}
	if st := r.Stats(); st.Live != live {
		t.Fatalf("post-churn live = %d, want %d", st.Live, live)
	}
	// Compaction must be invisible to resolution: same answers, same order
	// as a resolver freshly built over the surviving members.
	fresh, err := NewResolver(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ResolveSet(queries)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.ResolveSet(queries)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() == 0 {
		t.Fatal("churn fixture produced no matches; fixture broken")
	}
	if !reflect.DeepEqual(got.Correspondences(), want.Correspondences()) {
		t.Fatalf("post-churn resolver diverges from fresh build:\ngot %v\nwant %v", got, want)
	}
}

// TestCompactionPreservesRemoveAndReplace exercises the interaction of
// compaction with later removals and replaces: slot renumbering must keep
// the id→slot bookkeeping, the blocking index and the TF-IDF corpora
// consistent.
func TestCompactionPreservesRemoveAndReplace(t *testing.T) {
	queries, set := syntheticSets(240)
	cfg := testConfig()
	cfg.Columns = append(cfg.Columns, Column{QueryAttr: "title", SetAttr: "name", TFIDF: true, Weight: 1})
	r, err := NewResolver(set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids := set.IDs()
	// Remove the first two thirds — enough dead slots to force compaction.
	for _, id := range ids[:160] {
		r.Remove(id)
	}
	if st := r.Stats(); st.Slots >= 240 {
		t.Fatalf("compaction never ran: %d slots for %d live", st.Slots, st.Live)
	}
	// Post-compaction mutations: replace one survivor, remove another.
	surviving := ids[160:]
	repl := set.Get(surviving[3]).Clone()
	repl.SetAttr("name", "a replacement title after compaction")
	if err := r.Add(repl); err != nil {
		t.Fatal(err)
	}
	r.Remove(surviving[7])
	survivors := set.Filter(func(in *model.Instance) bool {
		if in.ID == surviving[7] {
			return false
		}
		return set.IndexOf(in.ID) >= 160
	})
	for i, id := range surviving {
		if i != 7 && !r.Has(id) {
			t.Fatalf("survivor %s lost", id)
		}
	}
	fresh, err := NewResolver(survivors, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The fresh resolver has no replacement; apply the same one.
	if err := fresh.Add(repl); err != nil {
		t.Fatal(err)
	}
	got, err := r.ResolveSet(queries)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.ResolveSet(queries)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 0) {
		t.Fatalf("post-compaction mutations diverge from rebuild:\ngot %v\nwant %v", got, want)
	}
}

// TestResolverConfigErrors covers constructor validation.
func TestResolverConfigErrors(t *testing.T) {
	_, set := syntheticSets(5)
	cases := []Config{
		{},                                    // no columns
		{Columns: []Column{{}}},               // no attrs
		{Columns: []Column{{QueryAttr: "t"}}}, // no set attr
		{Columns: []Column{{QueryAttr: "t", SetAttr: "n"}}},                               // no measure
		{Columns: []Column{{QueryAttr: "t", SetAttr: "n", Sim: sim.Trigram, Weight: -1}}}, // negative weight
	}
	for i, cfg := range cases {
		if _, err := NewResolver(set, cfg); err == nil {
			t.Errorf("case %d: NewResolver accepted invalid config", i)
		}
	}
	if _, err := NewResolver(nil, testConfig()); err == nil {
		t.Error("nil set must be rejected")
	}
}

// TestResolveSetTypeMismatch rejects query sets of a different object type.
func TestResolveSetTypeMismatch(t *testing.T) {
	_, set := syntheticSets(5)
	r, err := NewResolver(set, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	authors := model.NewObjectSet(model.LDS{Source: "DBLP", Type: model.Author})
	if _, err := r.ResolveSet(authors); err == nil {
		t.Fatal("type mismatch must be rejected")
	}
}

// TestConcurrentResolveAdd hammers one Resolver with concurrent Resolve,
// Add and Remove traffic; under -race this proves the locking discipline,
// and every observed result must be internally consistent (matches only at
// or above threshold).
func TestConcurrentResolveAdd(t *testing.T) {
	queries, set := syntheticSets(80)
	cfg := testConfig()
	ids := set.IDs()
	r, err := NewResolver(set.Subset(ids[:40]), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			qids := queries.IDs()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries.Get(qids[(i*7+w)%len(qids)])
				for _, m := range r.Resolve(q) {
					if m.Sim < cfg.Threshold {
						t.Errorf("match below threshold: %v", m)
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for round := 0; round < 3; round++ {
			for _, id := range ids[40:] {
				if err := r.Add(set.Get(id)); err != nil {
					t.Error(err)
					return
				}
			}
			for _, id := range ids[40:] {
				r.Remove(id)
			}
		}
	}()
	wg.Wait()
	if r.Len() != 40 {
		t.Fatalf("post-churn live count = %d, want 40", r.Len())
	}
	st := r.Stats()
	if st.Live != 40 || st.Slots < 80 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestResolveAppendZeroAllocs pins the serving-path contract: with every
// column on an in-place profiled measure (trigram, token Jaccard, year — as
// in testConfig) and a reused dst, a warm ResolveAppend performs zero heap
// allocations. This is the runtime twin of the //moma:noalloc annotation on
// resolveLocked.
func TestResolveAppendZeroAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	queries, set := syntheticSets(120)
	r, err := NewResolver(set, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	qs := queries.Instances()
	// Warm-up: grow the pooled scratch, the index probe buffer, and dst to
	// the fixture's high-water mark.
	var dst []Match
	total := 0
	for _, q := range qs {
		dst = r.ResolveAppend(q, dst[:0])
		total += len(dst)
	}
	if total == 0 {
		t.Fatal("fixture produced no matches; fixture broken")
	}
	for _, q := range qs[:8] {
		q := q
		allocs := testing.AllocsPerRun(100, func() {
			dst = r.ResolveAppend(q, dst[:0])
		})
		if allocs != 0 {
			t.Errorf("ResolveAppend(%s) allocates %.0f times per run, want 0", q.ID, allocs)
		}
	}
}
