package live

import "repro/internal/obs"

// Stage indexes of the resolve trace. The candidate probe inside
// index.Ords.EachCandidate is fused with scoring (candidates are scored as
// they stream out of the posting merge), so the trace attributes token
// lookup to "block", query profiling to "profile", and the fused
// probe-and-score loop to "score".
const (
	stageBlock = iota
	stageProfile
	stageScore
)

// Engine-side resolver metrics, registered once at package init on the
// process-global registry. Record paths are atomic adds (//moma:noalloc in
// internal/obs), so instrumentation does not disturb the warm resolve path's
// zero-allocation budget (TestResolveAppendZeroAllocs).
var (
	resolveStages = obs.NewStages(obs.Default, "moma_live_resolve",
		"Latency of one online resolution", obs.DefaultSlow,
		"block", "profile", "score")
	resolvesTotal = obs.Default.Counter("moma_live_resolves_total",
		"Online resolutions across all entry points (Resolve, ResolveAppend, ResolveSet, AddResolve).")
	resolveCandidates = obs.Default.Counter("moma_live_resolve_candidates_total",
		"Candidates scored by online resolutions.")
	resolveMatches = obs.Default.Counter("moma_live_resolve_matches_total",
		"Matches at or above threshold returned by online resolutions.")
	addsTotal = obs.Default.Counter("moma_live_adds_total",
		"Instances inserted into resolvers (replaces included).")
	removesTotal = obs.Default.Counter("moma_live_removes_total",
		"Instances tombstoned out of resolvers.")
	compactionsTotal = obs.Default.Counter("moma_live_compactions_total",
		"Slot-array compactions triggered by Remove churn.")
	// instancesLive counts live instances across every resolver in the
	// process. A resolver released without removing its members keeps its
	// contribution — a serving process owns its resolvers for its lifetime,
	// which is the deployment this gauge describes.
	instancesLive = obs.Default.Gauge("moma_live_instances",
		"Live (added and not removed) instances across all resolvers.")
)
