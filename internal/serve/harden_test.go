package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	moma "repro"
	"repro/internal/faultfs"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/store"
)

// gate installs a blocking test route behind the admission controller and
// returns the release function plus a channel signalling each admitted
// entry.
func gate(s *Server) (release func(), started chan struct{}) {
	ch := make(chan struct{})
	started = make(chan struct{}, 1024)
	s.api("GET /testblock", "testblock", func(w http.ResponseWriter, r *http.Request) (int, error) {
		started <- struct{}{}
		<-ch
		writeJSON(w, http.StatusOK, map[string]string{"ok": "true"})
		return http.StatusOK, nil
	})
	var once sync.Once
	return func() { once.Do(func() { close(ch) }) }, started
}

// TestOverloadSheds drives more concurrent requests than the admission cap
// and asserts the contract: at most MaxInFlight requests execute at once,
// the excess is shed immediately with 429 + Retry-After (not queued), and
// capacity freed by completions is reusable.
func TestOverloadSheds(t *testing.T) {
	const cap = 3
	srv, _ := testServerWithOptions(t, Options{MaxInFlight: cap})
	release, started := gate(srv)
	defer release()

	shedBefore := serveShed.Load()
	var wg sync.WaitGroup
	codes := make(chan int, 64)
	for i := 0; i < cap; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := httptest.NewRecorder()
			srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/testblock", nil))
			codes <- rec.Code
		}()
	}
	for i := 0; i < cap; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("admitted requests did not start")
		}
	}
	if got := srv.inflight.Load(); got != cap {
		t.Fatalf("inflight = %d, want %d", got, cap)
	}

	// Every request beyond the cap is shed synchronously: 429, Retry-After,
	// a JSON error body, and nothing enters the handler.
	const extra = 20
	for i := 0; i < extra; i++ {
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/testblock", nil))
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("over-cap request %d: code %d, want 429", i, rec.Code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Fatal("429 must carry Retry-After")
		}
		var body map[string]string
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body["error"] == "" {
			t.Fatalf("429 body = %q", rec.Body.String())
		}
	}
	if got := srv.inflight.Load(); got != cap {
		t.Fatalf("inflight after sheds = %d, want %d (sheds must not execute)", got, cap)
	}
	if len(started) != 0 {
		t.Fatalf("%d shed requests entered the handler", len(started))
	}
	if got := serveShed.Load() - shedBefore; got != extra {
		t.Fatalf("moma_serve_shed_total advanced by %d, want %d", got, extra)
	}

	// Completions free capacity: the blocked requests finish 200 and a new
	// request is admitted again.
	release()
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Fatalf("admitted request finished %d", code)
		}
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/testblock", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-drain request = %d, want 200", rec.Code)
	}
	if got := srv.inflight.Load(); got != 0 {
		t.Fatalf("inflight at rest = %d, want 0", got)
	}
}

// testServerWithOptions is testServer with explicit hardening options.
func testServerWithOptions(t *testing.T, opts Options) (*Server, *moma.System) {
	t.Helper()
	_, sys := testServer(t)
	return NewWithOptions(sys, opts), sys
}

// TestBodyTooLarge pins the 413 path on both body-accepting routes.
func TestBodyTooLarge(t *testing.T) {
	srv, _ := testServerWithOptions(t, Options{MaxBodyBytes: 128})
	big := strings.Repeat("x", 512)
	for _, path := range []string{
		"/sets/ACM.Publication/resolve",
		"/sets/ACM.Publication/instances",
	} {
		body := fmt.Sprintf(`{"id":"q","attrs":{"title":%q}}`, big)
		req := httptest.NewRequest("POST", path, strings.NewReader(body))
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s with %d-byte body = %d, want 413", path, len(body), rec.Code)
		}
		var resp map[string]string
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil || !strings.Contains(resp["error"], "128") {
			t.Fatalf("413 body = %q", rec.Body.String())
		}
	}
	// Small bodies still pass.
	var ok ResolveResponse
	rec := doJSON(t, srv.Handler(), "POST", "/sets/ACM.Publication/resolve",
		ResolveRequest{Attrs: map[string]string{"title": "cupid"}}, &ok)
	if rec.Code != http.StatusOK {
		t.Fatalf("small body = %d: %s", rec.Code, rec.Body.String())
	}
}

// TestPanicContained pins the recovery middleware: a panicking handler
// answers 500, bumps moma_serve_panics_total, and the server keeps serving.
func TestPanicContained(t *testing.T) {
	srv, _ := testServer(t)
	srv.api("GET /testpanic", "testpanic", func(w http.ResponseWriter, r *http.Request) (int, error) {
		panic("boom")
	})
	before := servePanics.Load()
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/testpanic", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panic route = %d, want 500", rec.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body["error"] != "internal error" {
		t.Fatalf("panic body = %q (panic values must not leak)", rec.Body.String())
	}
	if servePanics.Load() != before+1 {
		t.Fatal("moma_serve_panics_total must advance")
	}
	// The slot was released and the process survived: normal traffic flows.
	var resp ResolveResponse
	if rec := doJSON(t, srv.Handler(), "POST", "/sets/ACM.Publication/resolve",
		ResolveRequest{Attrs: map[string]string{"title": "cupid schema matching"}}, &resp); rec.Code != http.StatusOK {
		t.Fatalf("request after panic = %d", rec.Code)
	}
	if got := srv.inflight.Load(); got != 0 {
		t.Fatalf("inflight after panic = %d, want 0 (slot leaked)", got)
	}
}

// TestRequestDeadline pins the per-request deadline plumbing: a handler
// outliving RequestTimeout observes the expired context and answers 503.
func TestRequestDeadline(t *testing.T) {
	srv, _ := testServerWithOptions(t, Options{RequestTimeout: time.Millisecond})
	srv.api("GET /testslow", "testslow", func(w http.ResponseWriter, r *http.Request) (int, error) {
		<-r.Context().Done() // the middleware deadline fires, not a test sleep
		return deadlineStatus(r)
	})
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/testslow", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("deadline-expired request = %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "deadline") {
		t.Fatalf("deadline body = %q", rec.Body.String())
	}
}

// degradedSystem builds a system over an injector-backed repository and
// drives it into degraded mode with a WAL write fault.
func degradedSystem(t *testing.T) (*moma.System, *store.Store, *faultfs.Injector) {
	t.Helper()
	inj := faultfs.NewInjector(nil)
	repo, err := store.OpenRepositoryFS(t.TempDir(), inj)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	inj.Inject(faultfs.Rule{Op: faultfs.OpWrite, Path: "wal.jsonl", Sticky: true})
	err = repo.PutDelta("live.X",
		model.LDS{Source: "A", Type: model.Publication},
		model.LDS{Source: "B", Type: model.Publication},
		model.SameMappingType,
		[]mapping.Correspondence{{Domain: "a", Range: "b", Sim: 1}})
	if err == nil || repo.Degraded() == nil {
		t.Fatalf("fixture failed to degrade the repository: %v", err)
	}
	return moma.NewSystemWithRepository(repo), repo, inj
}

// TestReadyzReflectsDegradation: /readyz turns 503 while the repository is
// degraded and recovers with it; /healthz (liveness) stays 200 throughout.
func TestReadyzReflectsDegradation(t *testing.T) {
	sys, repo, inj := degradedSystem(t)
	srv := New(sys)

	var ready ReadyResponse
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("degraded readyz = %d, want 503", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ready); err != nil || ready.Ready || ready.Degraded == "" {
		t.Fatalf("degraded readyz body = %q", rec.Body.String())
	}
	if rec := httptest.NewRecorder(); true {
		srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("healthz while degraded = %d, want 200 (liveness is not readiness)", rec.Code)
		}
	}

	inj.ClearFaults()
	if err := repo.Recover(); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("recovered readyz = %d: %s", rec.Code, rec.Body.String())
	}
}

// TestDegradedStoreAnswers503 pins the client-facing contract of a
// degraded repository: mutations answer 503 + Retry-After (not 500), reads
// keep answering.
func TestDegradedStoreAnswers503(t *testing.T) {
	sys, _, _ := degradedSystem(t)
	set := moma.NewObjectSet(moma.LDS{Source: "ACM", Type: moma.Publication})
	set.AddNew("g0", map[string]string{"title": "mapping based object matching"})
	set.AddNew("g1", map[string]string{"title": "mapping based entity matching"})
	if err := sys.AddObjectSet("ACM.Publication", set); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RegisterResolver("ACM.Publication", moma.LiveConfig{
		MinShared: 2, Threshold: 0.5,
		Columns: []moma.LiveColumn{{QueryAttr: "title", SetAttr: "title", Sim: moma.Trigram}},
	}); err != nil {
		t.Fatal(err)
	}
	srv := New(sys)

	// The add resolves against live members and must persist the delta:
	// with the store degraded that is a 503, and the client is told when to
	// come back.
	rec := doJSON(t, srv.Handler(), "POST", "/sets/ACM.Publication/instances", AddInstanceRequest{
		ID: "new1", Attrs: map[string]string{"title": "mapping based object matching"},
	}, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("add against degraded store = %d, want 503: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("degraded 503 must carry Retry-After")
	}
	// Reads still answer.
	if rec := doJSON(t, srv.Handler(), "POST", "/sets/ACM.Publication/resolve", ResolveRequest{
		Attrs: map[string]string{"title": "mapping based object matching"},
	}, nil); rec.Code != http.StatusOK {
		t.Fatalf("resolve against degraded store = %d, want 200", rec.Code)
	}
}

// TestDrainFlipsReadinessFirst runs a real listener, parks a request in a
// gated handler, cancels the run context, and asserts the drain order:
// readiness flips (new work refused) while the in-flight request completes,
// and the drained count is logged.
func TestDrainFlipsReadinessFirst(t *testing.T) {
	var logMu sync.Mutex
	var logLines []string
	logf := func(format string, args ...any) {
		logMu.Lock()
		defer logMu.Unlock()
		logLines = append(logLines, fmt.Sprintf(format, args...))
	}
	srv, _ := testServerWithOptions(t, Options{DrainTimeout: 5 * time.Second, Logf: logf})
	release, started := gate(srv)
	defer release()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.serve(ctx, ln) }()

	var inflightCode atomic.Int64
	reqDone := make(chan struct{})
	go func() {
		defer close(reqDone)
		resp, err := http.Get(base + "/testblock")
		if err == nil {
			inflightCode.Store(int64(resp.StatusCode))
			resp.Body.Close()
		}
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never started")
	}

	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for !srv.draining.Load() {
		if time.Now().After(deadline) {
			t.Fatal("draining flag never flipped")
		}
		time.Sleep(time.Millisecond)
	}
	// Readiness answers unready the moment draining starts (checked via the
	// handler — the listener is closing).
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), `"draining":true`) {
		t.Fatalf("readyz during drain = %d %s", rec.Code, rec.Body.String())
	}
	// New API work is refused with 503 while draining.
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/testblock", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("API during drain = %d, want 503", rec.Code)
	}

	// The parked request still completes, and serve returns cleanly.
	release()
	select {
	case <-reqDone:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request did not complete during drain")
	}
	if code := inflightCode.Load(); code != http.StatusOK {
		t.Fatalf("in-flight request finished %d, want 200", code)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after drain")
	}

	logMu.Lock()
	defer logMu.Unlock()
	joined := strings.Join(logLines, "\n")
	if !strings.Contains(joined, "draining, 1 request(s) in flight") {
		t.Fatalf("drain start not logged: %q", joined)
	}
	if !strings.Contains(joined, "drained 1 request(s)") {
		t.Fatalf("drained count not logged: %q", joined)
	}
}

// TestProbesBypassAdmission: /healthz, /readyz and /metrics answer even
// with every admission slot taken.
func TestProbesBypassAdmission(t *testing.T) {
	srv, _ := testServerWithOptions(t, Options{MaxInFlight: 1})
	release, started := gate(srv)
	defer release()
	go func() {
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/testblock", nil))
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("blocking request never started")
	}
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("%s while saturated = %d, want 200", path, rec.Code)
		}
		if path == "/metrics" {
			body, _ := io.ReadAll(rec.Body)
			for _, series := range []string{"moma_serve_inflight", "moma_serve_shed_total", "moma_serve_panics_total"} {
				if !strings.Contains(string(body), series) {
					t.Fatalf("metrics missing %s", series)
				}
			}
		}
	}
}
