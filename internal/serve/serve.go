// Package serve exposes MOMA's online resolution subsystem as an HTTP JSON
// service over a moma.System: resolve a record against a registered set,
// add or remove instances with incremental same-mapping deltas in the
// repository, read stored mappings, and observe health and request metrics.
// cmd/moma-serve is the thin binary wrapper; the package keeps the handlers
// testable in-process (httptest) and reusable from examples.
//
// Routes:
//
//	POST   /sets/{set}/resolve        resolve one record (no state change)
//	POST   /sets/{set}/instances      add (and by default resolve) a record
//	DELETE /sets/{set}/instances/{id} remove a record from the live view
//	GET    /mappings/{name}           read a stored mapping
//	GET    /healthz                   liveness, uptime and resolver sizes
//	GET    /readyz                    readiness: not draining, repository healthy
//	GET    /metrics                   Prometheus text: route metrics + engine metrics
//	GET    /debug/slow                recent slow-query traces (threshold-gated)
//	GET    /debug/vars                expvar JSON
//	GET    /debug/pprof/*             runtime profiles (index, profile, trace, ...)
//
// Adding an instance resolves it against the live members first and records
// the resulting correspondences in the repository mapping "live.<set>" —
// the arrival's same-mapping delta; nothing already resolved is re-matched
// (the incremental workflow style of rule-based matching processes).
// Removing an instance drops its correspondences from that mapping.
//
// The API surface sits behind a hardening layer (harden.go): a
// concurrency-cap admission controller (429 + Retry-After on overload),
// per-request deadlines, body-size caps (413), panic containment, and a
// graceful drain that flips /readyz before the listener closes.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	moma "repro"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/obs"
)

// Server wires a moma.System to the HTTP API. Create with New or
// NewWithOptions.
type Server struct {
	sys     *moma.System
	mux     *http.ServeMux
	metrics *metrics
	start   time.Time
	opts    Options

	// Admission state (see harden.go): sem is the concurrency-cap
	// semaphore — a slot per admitted API request, non-blocking acquire,
	// excess shed with 429; draining flips when Run begins its graceful
	// shutdown; inflight counts admitted requests for /readyz and the
	// drain log.
	sem      chan struct{}
	draining atomic.Bool
	inflight atomic.Int64

	// State-changing requests are serialized per object set, not globally:
	// an add touches the set's object set, resolver and delta mapping
	// together, but sets share nothing, so resolves and adds against
	// different sets never contend. locks lazily allocates one mutex per
	// set name (delta-mapping reads key by the set the mapping belongs to).
	locksMu sync.Mutex
	locks   map[string]*sync.Mutex // guarded by locksMu
}

// New returns a server over the system with default hardening options.
// Resolvers must already be registered (System.RegisterResolver) for their
// sets to be resolvable.
func New(sys *moma.System) *Server {
	return NewWithOptions(sys, Options{})
}

// NewWithOptions returns a server with explicit admission, deadline and
// drain settings (zero fields take the defaults).
func NewWithOptions(sys *moma.System, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		sys: sys, mux: http.NewServeMux(), metrics: newMetrics(), start: time.Now(),
		opts:  opts,
		sem:   make(chan struct{}, opts.MaxInFlight),
		locks: make(map[string]*sync.Mutex),
	}
	// Probe routes answer outside admission: an overloaded or draining
	// server must stay observable.
	s.route("GET /healthz", "healthz", s.handleHealthz)
	s.route("GET /readyz", "readyz", s.handleReadyz)
	// API routes go through the admission controller (harden.go).
	s.api("POST /sets/{set}/resolve", "resolve", s.handleResolve)
	s.api("POST /sets/{set}/instances", "add_instance", s.handleAddInstance)
	s.api("DELETE /sets/{set}/instances/{id}", "remove_instance", s.handleRemoveInstance)
	s.api("GET /mappings/{name}", "get_mapping", s.handleGetMapping)
	s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.metrics.write(w)
		// Engine-side series (resolver stages, pipeline counters, store and
		// cache metrics) follow the route metrics in one scrape body.
		obs.Default.WritePrometheus(w)
	})
	s.registerDebug()
	return s
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Run serves on addr until ctx is cancelled, then drains gracefully:
// readiness flips first (new API requests answer 503, /readyz reports
// unready) and in-flight requests get Options.DrainTimeout to finish.
func (s *Server) Run(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.serve(ctx, ln)
}

// serve runs the HTTP server over an existing listener — the seam the
// drain tests use (an httptest listener stands in for the real socket).
func (s *Server) serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Flip readiness before touching the listener: load balancers watching
	// /readyz stop sending work, admission refuses what still arrives, and
	// the requests already admitted finish normally.
	s.draining.Store(true)
	accepted := s.inflight.Load()
	s.opts.Logf("moma-serve: draining, %d request(s) in flight, timeout %s", accepted, s.opts.DrainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), s.opts.DrainTimeout)
	defer cancel()
	shutdownErr := srv.Shutdown(shutdownCtx)
	s.opts.Logf("moma-serve: drained %d request(s)", accepted-s.inflight.Load())
	if shutdownErr != nil {
		return fmt.Errorf("serve: drain timed out: %w", shutdownErr)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// lockFor returns the mutex shard of one object set, allocating it on first
// use. Handlers touching a set's mutable state (resolver membership, the
// registered object set, the live.<set> delta mapping) hold this lock, and
// only this lock, so traffic against different sets proceeds in parallel.
func (s *Server) lockFor(set string) *sync.Mutex {
	s.locksMu.Lock()
	defer s.locksMu.Unlock()
	mu, ok := s.locks[set]
	if !ok {
		mu = &sync.Mutex{}
		s.locks[set] = mu
	}
	return mu
}

// setOfMapping maps a repository mapping name to the lock shard guarding it:
// delta mappings "live.<set>" mutate under their set's lock; any other
// mapping is keyed by its own name (no writer shares it).
func setOfMapping(name string) string {
	return strings.TrimPrefix(name, deltaMappingPrefix)
}

// route installs an instrumented handler: every request is counted and its
// latency observed under the given metric label.
func (s *Server) route(pattern, label string, h func(http.ResponseWriter, *http.Request) (int, error)) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		code, err := h(w, r)
		if err != nil {
			writeJSON(w, code, map[string]string{"error": err.Error()})
		}
		s.metrics.observe(label, code, time.Since(t0))
	})
}

// --- wire types ----------------------------------------------------------

// ResolveRequest asks a resolver to match one record.
type ResolveRequest struct {
	// ID optionally names the query record (echoed back; used as the domain
	// id of same-mapping deltas on the add path).
	ID string `json:"id,omitempty"`
	// Attrs are the record's attribute values.
	Attrs map[string]string `json:"attrs"`
	// Limit caps the returned matches to the top-n by similarity (0 = all).
	Limit int `json:"limit,omitempty"`
}

// MatchResult is one returned match.
type MatchResult struct {
	ID  string  `json:"id"`
	Sim float64 `json:"sim"`
}

// ResolveResponse answers a resolve call.
type ResolveResponse struct {
	Set     string        `json:"set"`
	QueryID string        `json:"query_id,omitempty"`
	Matches []MatchResult `json:"matches"`
	TookUS  int64         `json:"took_us"`
}

// AddInstanceRequest adds a record to a set's live view.
type AddInstanceRequest struct {
	ID    string            `json:"id"`
	Attrs map[string]string `json:"attrs"`
	// NoResolve skips the arrival resolution (and thus the same-mapping
	// delta) — a pure index update.
	NoResolve bool `json:"no_resolve,omitempty"`
}

// AddInstanceResponse answers an add call.
type AddInstanceResponse struct {
	Set     string        `json:"set"`
	ID      string        `json:"id"`
	Matches []MatchResult `json:"matches"`
	// Mapping names the repository mapping holding the recorded delta
	// (empty with NoResolve or when nothing matched).
	Mapping string `json:"mapping,omitempty"`
}

// MappingResponse renders a stored mapping.
type MappingResponse struct {
	Name            string             `json:"name"`
	Domain          string             `json:"domain"`
	Range           string             `json:"range"`
	Type            string             `json:"type"`
	Len             int                `json:"len"`
	Correspondences []CorrespondenceJS `json:"correspondences"`
	Truncated       bool               `json:"truncated,omitempty"`
}

// CorrespondenceJS is one mapping row.
type CorrespondenceJS struct {
	Domain string  `json:"domain"`
	Range  string  `json:"range"`
	Sim    float64 `json:"sim"`
}

// HealthResponse reports liveness.
type HealthResponse struct {
	Status    string                    `json:"status"`
	UptimeS   float64                   `json:"uptime_s"`
	Resolvers map[string]ResolverHealth `json:"resolvers"`
	Mappings  int                       `json:"mappings"`
}

// ResolverHealth sizes one resolver.
type ResolverHealth struct {
	Live       int `json:"live"`
	Slots      int `json:"slots"`
	IndexTerms int `json:"index_terms"`
}

// --- handlers ------------------------------------------------------------

// handleHealthz reports liveness and per-resolver stats.
//
//moma:readpath
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) (int, error) {
	resp := HealthResponse{
		Status:    "ok",
		UptimeS:   time.Since(s.start).Seconds(),
		Resolvers: make(map[string]ResolverHealth),
		Mappings:  s.sys.Repo.Len(),
	}
	for _, name := range s.sys.ResolverNames() {
		if res, ok := s.sys.Resolver(name); ok {
			st := res.Stats()
			resp.Resolvers[name] = ResolverHealth{Live: st.Live, Slots: st.Slots, IndexTerms: st.IndexTerms}
		}
	}
	writeJSON(w, http.StatusOK, resp)
	return http.StatusOK, nil
}

// handleResolve resolves one query record against a set's live resolver.
// GET-shaped read traffic: it must stay lookup-only end to end.
//
//moma:readpath
func (s *Server) handleResolve(w http.ResponseWriter, r *http.Request) (int, error) {
	setName := r.PathValue("set")
	res, ok := s.sys.Resolver(setName)
	if !ok {
		return http.StatusNotFound, fmt.Errorf("no resolver for set %q", setName)
	}
	var req ResolveRequest
	if code, err := decodeBody(r, &req); code != 0 {
		return code, err
	}
	if len(req.Attrs) == 0 {
		return http.StatusBadRequest, fmt.Errorf("attrs must not be empty")
	}
	if code, err := deadlineStatus(r); code != 0 {
		return code, err
	}
	t0 := time.Now()
	matches := res.Resolve(model.NewInstance(model.ID(req.ID), req.Attrs))
	took := time.Since(t0)
	writeJSON(w, http.StatusOK, ResolveResponse{
		Set:     setName,
		QueryID: req.ID,
		Matches: rankMatches(matches, req.Limit),
		TookUS:  took.Microseconds(),
	})
	return http.StatusOK, nil
}

func (s *Server) handleAddInstance(w http.ResponseWriter, r *http.Request) (int, error) {
	setName := r.PathValue("set")
	res, ok := s.sys.Resolver(setName)
	if !ok {
		return http.StatusNotFound, fmt.Errorf("no resolver for set %q", setName)
	}
	var req AddInstanceRequest
	if code, err := decodeBody(r, &req); code != 0 {
		return code, err
	}
	if req.ID == "" {
		return http.StatusBadRequest, fmt.Errorf("id must not be empty")
	}
	in := model.NewInstance(model.ID(req.ID), req.Attrs)

	mu := s.lockFor(setName)
	mu.Lock()
	defer mu.Unlock()
	// The lock wait can consume the whole request budget under contention;
	// don't start mutating for a caller that has already given up.
	if code, err := deadlineStatus(r); code != 0 {
		return code, err
	}
	// A re-add replaces the instance: its correspondences in the delta
	// mapping describe the previous attribute values and must not survive.
	if res.Has(in.ID) {
		if err := s.dropFromDeltaLocked(setName, in.ID); err != nil {
			return storageStatus(w, err)
		}
	}
	var matches []moma.LiveMatch
	var err error
	if req.NoResolve {
		err = res.Add(in)
	} else {
		matches, err = res.AddResolve(in)
	}
	if err != nil {
		return http.StatusBadRequest, err
	}
	// Keep the registered set in sync so later batch matches (and their
	// cached blocking structures, which key on the set's version) see the
	// arrival too. ObjectSet itself is not safe for concurrent mutation:
	// an embedding program must not run batch matches over a set while
	// also feeding it instances through this endpoint (the serve process
	// is assumed to own mutation of the sets it serves).
	if set, ok := s.sys.ObjectSetByName(setName); ok {
		set.Add(in)
	}
	resp := AddInstanceResponse{Set: setName, ID: req.ID, Matches: rankMatches(matches, 0)}
	if len(matches) > 0 {
		name, err := s.recordDeltaLocked(setName, res, model.ID(req.ID), matches)
		if err != nil {
			// The instance is live but its delta was not persisted; surface
			// that instead of answering 200 with a silently-missing mapping.
			// A degraded repository answers 503 + Retry-After (storageStatus)
			// so well-behaved clients back off until Recover lifts it.
			return storageStatus(w, fmt.Errorf("recording delta: %w", err))
		}
		resp.Mapping = name
	}
	writeJSON(w, http.StatusOK, resp)
	return http.StatusOK, nil
}

func (s *Server) handleRemoveInstance(w http.ResponseWriter, r *http.Request) (int, error) {
	setName := r.PathValue("set")
	id := model.ID(r.PathValue("id"))
	res, ok := s.sys.Resolver(setName)
	if !ok {
		return http.StatusNotFound, fmt.Errorf("no resolver for set %q", setName)
	}
	mu := s.lockFor(setName)
	mu.Lock()
	defer mu.Unlock()
	if code, err := deadlineStatus(r); code != 0 {
		return code, err
	}
	if !res.Remove(id) {
		return http.StatusNotFound, fmt.Errorf("no live instance %q in %q", id, setName)
	}
	// Drop the removed instance's correspondences from the delta mapping.
	// The registered ObjectSet intentionally keeps the instance: sets are
	// append-only (profile columns and the blocking cache key on stable
	// insertion ordinals), so removal is a live-view operation — batch
	// matches over the raw set still see the instance until the set is
	// rebuilt. The live resolver is the authority for online answers.
	if err := s.dropFromDeltaLocked(setName, id); err != nil {
		return storageStatus(w, err)
	}
	writeJSON(w, http.StatusOK, map[string]any{"set": setName, "id": string(id), "removed": true})
	return http.StatusOK, nil
}

// dropFromDeltaLocked removes every correspondence touching id from the
// set's delta mapping. Store.DropTouching answers "does this id appear at
// all" from the mapping's posting lists first, so the common case —
// removing an instance that never matched anything — costs two posting
// probes; when rows do exist, removal walks only that id's postings
// (O(postings) swap-removes) instead of filtering and re-Put-ing the whole
// delta table, and a persistent repository logs a compact "drop" record
// rather than rewriting the full mapping. Callers hold the set's lock.
func (s *Server) dropFromDeltaLocked(setName string, id model.ID) error {
	_, err := s.sys.Repo.DropTouching(deltaMappingName(setName), id)
	return err
}

// handleGetMapping serves a stored mapping page.
//
//moma:readpath
func (s *Server) handleGetMapping(w http.ResponseWriter, r *http.Request) (int, error) {
	name := r.PathValue("name")
	m, ok := s.sys.MappingByName(name)
	if !ok {
		return http.StatusNotFound, fmt.Errorf("no mapping %q", name)
	}
	limit := 100
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			return http.StatusBadRequest, fmt.Errorf("bad limit %q (want a non-negative integer)", q)
		}
		limit = n
	}
	// Serialize under the owning set's lock: live.<set> mappings mutate on
	// adds to that set (reads of other sets' mappings proceed in parallel).
	mu := s.lockFor(setOfMapping(name))
	mu.Lock()
	resp := MappingResponse{
		Name:   name,
		Domain: m.Domain().String(),
		Range:  m.Range().String(),
		Type:   string(m.Type()),
		Len:    m.Len(),
	}
	// Stream rows off the columns with an early stop at the limit: a read
	// of the first 100 rows of a million-row mapping copies 100 rows, not
	// the table.
	ids := m.Dict().All()
	m.EachOrd(func(d, r uint32, sim float64) bool {
		if len(resp.Correspondences) >= limit {
			resp.Truncated = true
			return false
		}
		resp.Correspondences = append(resp.Correspondences, CorrespondenceJS{
			Domain: string(ids[d]), Range: string(ids[r]), Sim: sim,
		})
		return true
	})
	mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
	return http.StatusOK, nil
}

// recordDeltaLocked merges an arrival's matches into the set's delta
// same-mapping ("live.<set>") in the repository, creating it on first use.
// The store applies the rows and — for WAL-backed repositories — persists
// exactly these delta rows in the same critical section, so an acknowledged
// arrival survives a crash without rewriting the whole mapping per add.
// Callers hold the set's lock.
func (s *Server) recordDeltaLocked(setName string, res *moma.LiveResolver, id model.ID, matches []moma.LiveMatch) (string, error) {
	name := deltaMappingName(setName)
	rows := make([]mapping.Correspondence, len(matches))
	for i, match := range matches {
		rows[i] = mapping.Correspondence{Domain: id, Range: match.ID, Sim: match.Sim}
	}
	if err := s.sys.Repo.PutDelta(name, res.LDS(), res.LDS(), model.SameMappingType, rows); err != nil {
		return "", err
	}
	return name, nil
}

// deltaMappingPrefix prefixes the repository mappings accumulating a set's
// online same-mapping deltas.
const deltaMappingPrefix = "live."

// deltaMappingName names the delta mapping of one set.
func deltaMappingName(setName string) string { return deltaMappingPrefix + setName }

// rankMatches sorts by similarity descending (ties by id) and applies the
// limit. The resolver returns set insertion order; an API consumer wants
// the best first.
func rankMatches(matches []moma.LiveMatch, limit int) []MatchResult {
	out := make([]MatchResult, 0, len(matches))
	for _, m := range matches {
		out = append(out, MatchResult{ID: string(m.ID), Sim: m.Sim})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sim != out[j].Sim {
			return out[i].Sim > out[j].Sim
		}
		return out[i].ID < out[j].ID
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v) //moma:errsink-ok a failed write means the client hung up; nothing durable to lose
}
