package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// gatedWriter blocks its first Write until released — a scraper that
// stalled mid-response.
type gatedWriter struct {
	wrote   chan struct{} // closed on first Write
	release chan struct{} // Write returns once this closes
	once    sync.Once
}

func (g *gatedWriter) Write(p []byte) (int, error) {
	g.once.Do(func() { close(g.wrote) })
	<-g.release
	return len(p), nil
}

// TestMetricsWriteDoesNotHoldLock pins the snapshot-then-emit contract of
// metrics.write: a scrape stalled on a slow client must not block request
// recording.
func TestMetricsWriteDoesNotHoldLock(t *testing.T) {
	m := newMetrics()
	m.observe("resolve", 200, time.Millisecond)

	gw := &gatedWriter{wrote: make(chan struct{}), release: make(chan struct{})}
	writeDone := make(chan struct{})
	go func() {
		m.write(gw)
		close(writeDone)
	}()
	<-gw.wrote // write is now mid-emission, stalled on the writer

	observed := make(chan struct{})
	go func() {
		m.observe("resolve", 200, time.Millisecond)
		close(observed)
	}()
	select {
	case <-observed:
	case <-time.After(2 * time.Second):
		t.Fatal("observe blocked while write was stalled on a slow scraper")
	}
	close(gw.release)
	<-writeDone
}

// scrape fetches /metrics and returns the body.
func scrape(t *testing.T, h http.Handler) string {
	t.Helper()
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	return rec.Body.String()
}

// TestMetricsExposesEngineSeries drives one resolve and asserts the
// engine-side series from the instrumented packages appear in the scrape
// body next to the route metrics.
func TestMetricsExposesEngineSeries(t *testing.T) {
	srv, _ := testServer(t)
	doJSON(t, srv.Handler(), "POST", "/sets/ACM.Publication/resolve", ResolveRequest{
		Attrs: map[string]string{"title": "mapping based object matching"},
	}, nil)
	body := scrape(t, srv.Handler())
	for _, want := range []string{
		"moma_live_resolves_total",
		"moma_live_resolve_candidates_total",
		"moma_live_resolve_matches_total",
		"moma_live_instances",
		`moma_live_resolve_stage_seconds_bucket{stage="block",le="+Inf"}`,
		`moma_live_resolve_stage_seconds_bucket{stage="profile",le="+Inf"}`,
		`moma_live_resolve_stage_seconds_bucket{stage="score",le="+Inf"}`,
		"moma_live_resolve_seconds_count",
		"moma_match_pairs_total",
		"moma_blockcache_hits_total",
		"moma_profilecache_misses_total",
		"moma_store_wal_records_total",
		"moma_sim_dict_terms",
		"moma_model_dict_ids",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing engine series %q", want)
		}
	}
}

// TestPrometheusConformance checks the full /metrics body against the text
// exposition format: every sample belongs to a family announced by HELP and
// TYPE lines, histogram buckets are cumulative (monotonically non-decreasing
// toward +Inf, which equals the series count), and the series ordering is
// identical across consecutive scrapes.
func TestPrometheusConformance(t *testing.T) {
	srv, _ := testServer(t)
	doJSON(t, srv.Handler(), "POST", "/sets/ACM.Publication/resolve", ResolveRequest{
		Attrs: map[string]string{"title": "entity resolution over web data"},
	}, nil)
	doJSON(t, srv.Handler(), "GET", "/healthz", nil, nil)

	body := scrape(t, srv.Handler())

	helped := map[string]bool{}
	typed := map[string]string{}
	lastBucket := map[string]uint64{} // series (name+labels sans le) -> last cumulative value
	var order []string
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if name, ok := strings.CutPrefix(line, "# HELP "); ok {
			helped[strings.Fields(name)[0]] = true
			continue
		}
		if name, ok := strings.CutPrefix(line, "# TYPE "); ok {
			f := strings.Fields(name)
			typed[f[0]] = f[1]
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		series, value := line[:sp], line[sp+1:]
		order = append(order, series)
		name := series
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suffix); ok && typed[base] == "histogram" {
				family = base
				break
			}
		}
		if !helped[family] || typed[family] == "" {
			t.Errorf("sample %q has no HELP/TYPE for family %q", line, family)
			continue
		}
		if typed[family] == "histogram" && strings.HasSuffix(name, "_bucket") {
			le := ""
			key := series
			if i := strings.Index(series, `le="`); i >= 0 {
				j := strings.IndexByte(series[i+4:], '"')
				le = series[i+4 : i+4+j]
				key = series[:i] + series[i+4+j:]
			}
			v, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				t.Fatalf("bucket %q has non-integer value %q", series, value)
			}
			if prev, seen := lastBucket[key]; seen && v < prev {
				t.Errorf("bucket %q le=%q value %d below previous bucket %d: not cumulative", key, le, v, prev)
			}
			lastBucket[key] = v
		}
	}

	// Ordering must be a pure function of the registered series: scrape
	// again (values move — uptime, durations — but identities must not).
	var order2 []string
	for _, line := range strings.Split(scrape(t, srv.Handler()), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		order2 = append(order2, line[:sp])
	}
	if len(order) != len(order2) {
		t.Fatalf("scrapes disagree on series count: %d vs %d", len(order), len(order2))
	}
	for i := range order {
		if order[i] != order2[i] {
			t.Fatalf("series order unstable at %d: %q vs %q", i, order[i], order2[i])
		}
	}
}

// TestDebugSlowCapturesTraces arms the slow-query ring, drives a resolve
// and reads the trace back through GET /debug/slow.
func TestDebugSlowCapturesTraces(t *testing.T) {
	obs.SetSlowThreshold(time.Nanosecond)
	defer obs.SetSlowThreshold(0)

	srv, _ := testServer(t)
	doJSON(t, srv.Handler(), "POST", "/sets/ACM.Publication/resolve", ResolveRequest{
		ID:    "slow-q",
		Attrs: map[string]string{"title": "mapping based object matching"},
	}, nil)

	var resp SlowQueriesResponse
	doJSON(t, srv.Handler(), "GET", "/debug/slow", nil, &resp)
	if resp.ThresholdNS != 1 {
		t.Fatalf("threshold_ns = %d, want 1", resp.ThresholdNS)
	}
	if len(resp.Queries) == 0 {
		t.Fatal("no traces captured with a 1ns threshold")
	}
	var found bool
	for _, q := range resp.Queries {
		if q.Op == "moma_live_resolve" && q.ID == "slow-q" {
			found = true
			if q.TotalNS <= 0 || len(q.Stages) != 3 {
				t.Fatalf("trace malformed: %+v", q)
			}
		}
	}
	if !found {
		t.Fatalf("no trace for query slow-q in %+v", resp.Queries)
	}
}

// TestDebugVarsAndPprofMounted smoke-checks the diagnostics routes answer
// on the server's own mux.
func TestDebugVarsAndPprofMounted(t *testing.T) {
	srv, _ := testServer(t)
	for _, path := range []string{"/debug/vars", "/debug/pprof/", "/debug/pprof/cmdline"} {
		req := httptest.NewRequest("GET", path, nil)
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, rec.Code)
		}
		if b, _ := io.ReadAll(rec.Result().Body); len(b) == 0 {
			t.Errorf("GET %s returned an empty body", path)
		}
	}
}
