package serve

// Request metrics: per-route counters and latency histograms, exposed in
// Prometheus text format on /metrics. Hand-rolled (no client library
// dependency): a fixed bucket layout and a mutex are all a single-process
// service needs, and the text exposition format is trivial to emit.

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// latencyBuckets are the histogram upper bounds in seconds, spanning the
// expected range of a resolver hit: tens of microseconds on warm indexes up
// to seconds for pathological queries.
var latencyBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

type counterKey struct {
	route string
	code  int
}

// histogram is one route's cumulative latency histogram.
type histogram struct {
	counts []uint64 // parallel to latencyBuckets
	sum    float64  // seconds
	total  uint64
}

// metrics collects request counts and latencies. Safe for concurrent use.
type metrics struct {
	mu       sync.Mutex
	start    time.Time
	requests map[counterKey]uint64 // guarded by mu
	byRoute  map[string]*histogram // guarded by mu
}

func newMetrics() *metrics {
	return &metrics{
		start:    time.Now(),
		requests: make(map[counterKey]uint64),
		byRoute:  make(map[string]*histogram),
	}
}

// observe records one finished request.
func (m *metrics) observe(route string, code int, took time.Duration) {
	secs := took.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[counterKey{route, code}]++
	h := m.byRoute[route]
	if h == nil {
		h = &histogram{counts: make([]uint64, len(latencyBuckets))}
		m.byRoute[route] = h
	}
	h.total++
	h.sum += secs
	for i, ub := range latencyBuckets {
		if secs <= ub {
			h.counts[i]++
		}
	}
}

// write emits the Prometheus text exposition. The mutex guards the maps the
// handlers record into, and w is typically a network connection — so write
// snapshots everything under the lock and emits after unlocking, and a
// stalled scraper never blocks request recording
// (TestMetricsWriteDoesNotHoldLock pins this).
func (m *metrics) write(w io.Writer) {
	type histSnap struct {
		route  string
		counts []uint64
		sum    float64
		total  uint64
	}
	m.mu.Lock()
	uptime := time.Since(m.start).Seconds()
	keys := make([]counterKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].route != keys[j].route {
			return keys[i].route < keys[j].route
		}
		return keys[i].code < keys[j].code
	})
	reqs := make([]uint64, len(keys))
	for i, k := range keys {
		reqs[i] = m.requests[k]
	}
	routes := make([]string, 0, len(m.byRoute))
	for r := range m.byRoute {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	hists := make([]histSnap, 0, len(routes))
	for _, route := range routes {
		h := m.byRoute[route]
		hists = append(hists, histSnap{
			route:  route,
			counts: append([]uint64(nil), h.counts...),
			sum:    h.sum,
			total:  h.total,
		})
	}
	m.mu.Unlock()

	fmt.Fprintln(w, "# HELP moma_requests_total Requests served, by route and status code.")
	fmt.Fprintln(w, "# TYPE moma_requests_total counter")
	for i, k := range keys {
		fmt.Fprintf(w, "moma_requests_total{route=%q,code=\"%d\"} %d\n", k.route, k.code, reqs[i])
	}

	fmt.Fprintln(w, "# HELP moma_request_duration_seconds Request latency, by route.")
	fmt.Fprintln(w, "# TYPE moma_request_duration_seconds histogram")
	for _, h := range hists {
		for i, ub := range latencyBuckets {
			fmt.Fprintf(w, "moma_request_duration_seconds_bucket{route=%q,le=\"%g\"} %d\n", h.route, ub, h.counts[i])
		}
		fmt.Fprintf(w, "moma_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", h.route, h.total)
		fmt.Fprintf(w, "moma_request_duration_seconds_sum{route=%q} %g\n", h.route, h.sum)
		fmt.Fprintf(w, "moma_request_duration_seconds_count{route=%q} %d\n", h.route, h.total)
	}

	fmt.Fprintln(w, "# HELP moma_uptime_seconds Seconds since the server started.")
	fmt.Fprintln(w, "# TYPE moma_uptime_seconds gauge")
	fmt.Fprintf(w, "moma_uptime_seconds %g\n", uptime)
}
