package serve

// Overload and failure hardening for the API surface: a concurrency-cap
// admission controller that sheds excess load with 429 + Retry-After
// instead of queueing it, per-request deadlines, request-body size caps
// (413), panic containment (500 + moma_serve_panics_total, never a dead
// process), a /readyz distinct from /healthz — liveness is "the process
// answers", readiness is "send me traffic": draining or a degraded
// repository flips readiness while liveness stays green — and a graceful
// drain that flips readiness before the listener closes. Probe and
// observability routes (/healthz, /readyz, /metrics, /debug/*) bypass
// admission: an operator must be able to look at an overloaded server.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// Admission and deadline defaults (Options zero values).
const (
	DefaultMaxInFlight    = 256
	DefaultRequestTimeout = 10 * time.Second
	DefaultMaxBodyBytes   = int64(1 << 20)
	DefaultDrainTimeout   = 5 * time.Second
)

// Options tunes the hardening layer. The zero value means the defaults
// above; New uses them unchanged.
type Options struct {
	// MaxInFlight caps concurrently admitted API requests; excess requests
	// are shed immediately with 429 and a Retry-After header rather than
	// queued (queues melt under sustained overload, sheds don't).
	MaxInFlight int
	// RequestTimeout bounds each admitted API request; handlers observe the
	// deadline through the request context.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies on body-accepting routes; larger
	// bodies answer 413.
	MaxBodyBytes int64
	// DrainTimeout bounds the graceful drain after Run's context ends.
	DrainTimeout time.Duration
	// Logf receives operational log lines (drain progress, panics). nil
	// discards them.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = DefaultMaxInFlight
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = DefaultRequestTimeout
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = DefaultDrainTimeout
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Hardening metrics, on the shared engine registry so one /metrics scrape
// carries them alongside the store and resolver series.
var (
	servePanics = obs.Default.Counter("moma_serve_panics_total",
		"Handler panics contained by the recovery middleware.")
	serveShed = obs.Default.Counter("moma_serve_shed_total",
		"API requests shed with 429 by the admission controller.")
	serveInflight = obs.Default.Gauge("moma_serve_inflight",
		"API requests currently admitted and executing.")
)

// api installs an instrumented API route behind the admission controller;
// probe routes use route directly.
func (s *Server) api(pattern, label string, h func(http.ResponseWriter, *http.Request) (int, error)) {
	s.route(pattern, label, s.admit(label, h))
}

// admit wraps an API handler with the hardening middleware: drain refusal,
// concurrency-cap shedding, the per-request deadline, the body-size cap,
// and panic containment. Order matters — shedding happens before any work,
// and the recover covers everything after admission.
func (s *Server) admit(label string, h func(http.ResponseWriter, *http.Request) (int, error)) func(http.ResponseWriter, *http.Request) (int, error) {
	return func(w http.ResponseWriter, r *http.Request) (code int, err error) {
		if s.draining.Load() {
			w.Header().Set("Retry-After", "1")
			return http.StatusServiceUnavailable, fmt.Errorf("server is draining")
		}
		select {
		case s.sem <- struct{}{}:
		default:
			serveShed.Inc()
			w.Header().Set("Retry-After", "1")
			return http.StatusTooManyRequests, fmt.Errorf("server at capacity (%d requests in flight)", cap(s.sem))
		}
		defer func() { <-s.sem }()
		s.inflight.Add(1)
		serveInflight.Add(1)
		defer func() {
			s.inflight.Add(-1)
			serveInflight.Add(-1)
		}()
		defer func() {
			if p := recover(); p != nil {
				servePanics.Inc()
				s.opts.Logf("moma-serve: panic in %s: %v\n%s", label, p, debug.Stack())
				code, err = http.StatusInternalServerError, fmt.Errorf("internal error")
			}
		}()
		ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
		}
		return h(w, r)
	}
}

// decodeBody decodes a JSON request body, translating the MaxBytesReader
// cap into 413 and everything else into 400. A zero status means success.
func decodeBody(r *http.Request, v any) (int, error) {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds the %d-byte limit", mbe.Limit)
		}
		return http.StatusBadRequest, fmt.Errorf("bad request body: %w", err)
	}
	return 0, nil
}

// deadlineStatus reports whether the request's deadline (or the client)
// already cancelled it — checked after lock waits and before expensive
// stages, the points where an admitted request can have aged out. A zero
// status means the request is still live.
func deadlineStatus(r *http.Request) (int, error) {
	if err := r.Context().Err(); err != nil {
		return http.StatusServiceUnavailable, fmt.Errorf("request deadline exceeded: %w", err)
	}
	return 0, nil
}

// storageStatus maps a repository write error to a response. A degraded
// (read-only) store answers 503 with Retry-After — the condition is
// actionable (store.Recover) and retries may find it lifted. A raw
// StorageError gets the same treatment: it is the mutation that just
// degraded the store, and the client deserves the same retryable answer as
// everyone arriving after it. Anything else is a plain 500.
func storageStatus(w http.ResponseWriter, err error) (int, error) {
	var serr *store.StorageError
	switch {
	case errors.Is(err, store.ErrDegraded):
		w.Header().Set("Retry-After", "5")
		return http.StatusServiceUnavailable, fmt.Errorf("repository degraded (read-only): %w", err)
	case errors.As(err, &serr):
		w.Header().Set("Retry-After", "5")
		return http.StatusServiceUnavailable, fmt.Errorf("repository storage failure: %w", err)
	}
	return http.StatusInternalServerError, err
}

// ReadyResponse answers /readyz.
type ReadyResponse struct {
	Ready    bool   `json:"ready"`
	Draining bool   `json:"draining"`
	Degraded string `json:"degraded,omitempty"`
	Inflight int64  `json:"inflight"`
}

// handleReadyz reports readiness: healthy repository and not draining.
// Distinct from /healthz on purpose — an unready server is still alive, it
// just should not receive new traffic.
//
//moma:readpath
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) (int, error) {
	resp := ReadyResponse{
		Draining: s.draining.Load(),
		Inflight: s.inflight.Load(),
	}
	if err := s.sys.Repo.Degraded(); err != nil {
		resp.Degraded = err.Error()
	}
	resp.Ready = !resp.Draining && resp.Degraded == ""
	code := http.StatusOK
	if !resp.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
	return code, nil
}
