package serve

// Diagnostics surface: pprof, expvar and the slow-query flight recorder.
// These routes bypass the per-route request metrics — scrapes and profile
// downloads would otherwise dominate the latency histograms they exist to
// explain.

import (
	"expvar"
	"net/http"
	"net/http/pprof"

	"repro/internal/obs"
)

// SlowQueriesResponse answers GET /debug/slow: the capture threshold, the
// lifetime number of captured traces, and the retained traces newest first.
type SlowQueriesResponse struct {
	ThresholdNS int64           `json:"threshold_ns"`
	Total       uint64          `json:"total"`
	Queries     []obs.SlowQuery `json:"queries"`
}

// registerDebug mounts the diagnostics routes. The pprof handlers are
// mounted explicitly on the server's own mux — the server never serves
// http.DefaultServeMux, so the net/http/pprof side-effect registrations
// alone would be unreachable.
func (s *Server) registerDebug() {
	s.mux.HandleFunc("GET /debug/slow", s.handleSlow)
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// handleSlow drains the process-global slow-query ring. Capture is
// threshold-gated (moma-serve's -slow-query flag, obs.SetSlowThreshold from
// an embedding program); with the threshold unset the ring is empty and the
// response says so via threshold_ns = 0.
func (s *Server) handleSlow(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, SlowQueriesResponse{
		ThresholdNS: int64(obs.DefaultSlow.Threshold()),
		Total:       obs.DefaultSlow.Total(),
		Queries:     obs.SlowSnapshot(),
	})
}
