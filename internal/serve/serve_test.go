package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	moma "repro"
)

// testServer builds a system with one resolvable publication set.
func testServer(t *testing.T) (*Server, *moma.System) {
	t.Helper()
	sys := moma.NewSystem()
	set := moma.NewObjectSet(moma.LDS{Source: "ACM", Type: moma.Publication})
	titles := []string{
		"generic schema matching with cupid",
		"a formal perspective on the view selection problem",
		"mapping based object matching",
		"entity resolution over web data sources",
	}
	for i, title := range titles {
		set.AddNew(moma.ID(fmt.Sprintf("g%d", i)), map[string]string{
			"title": title, "year": fmt.Sprintf("%d", 2000+i),
		})
	}
	if err := sys.AddObjectSet("ACM.Publication", set); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RegisterResolver("ACM.Publication", moma.LiveConfig{
		MinShared: 2,
		Threshold: 0.7,
		Columns: []moma.LiveColumn{
			{QueryAttr: "title", SetAttr: "title", Sim: moma.Trigram},
		},
	}); err != nil {
		t.Fatal(err)
	}
	return New(sys), sys
}

func doJSON(t *testing.T, h http.Handler, method, path string, body, out any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: bad response %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec
}

func TestHealthz(t *testing.T) {
	srv, _ := testServer(t)
	var resp HealthResponse
	rec := doJSON(t, srv.Handler(), "GET", "/healthz", nil, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}
	if resp.Status != "ok" || resp.Resolvers["ACM.Publication"].Live != 4 {
		t.Fatalf("healthz body = %+v", resp)
	}
}

func TestResolveEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	var resp ResolveResponse
	rec := doJSON(t, srv.Handler(), "POST", "/sets/ACM.Publication/resolve", ResolveRequest{
		ID:    "q1",
		Attrs: map[string]string{"title": "the view selection problem a formal perspective"},
	}, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("resolve = %d: %s", rec.Code, rec.Body.String())
	}
	if len(resp.Matches) == 0 || resp.Matches[0].ID != "g1" {
		t.Fatalf("resolve body = %+v, want g1 first", resp)
	}
	if resp.QueryID != "q1" || resp.Set != "ACM.Publication" {
		t.Fatalf("echo fields wrong: %+v", resp)
	}

	// Unknown set and malformed bodies are client errors.
	if rec := doJSON(t, srv.Handler(), "POST", "/sets/Nope/resolve", ResolveRequest{Attrs: map[string]string{"title": "x"}}, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown set = %d", rec.Code)
	}
	req := httptest.NewRequest("POST", "/sets/ACM.Publication/resolve", strings.NewReader("{"))
	rec2 := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec2, req)
	if rec2.Code != http.StatusBadRequest {
		t.Fatalf("malformed body = %d", rec2.Code)
	}
}

func TestResolveLimitAndRanking(t *testing.T) {
	srv, _ := testServer(t)
	var resp ResolveResponse
	doJSON(t, srv.Handler(), "POST", "/sets/ACM.Publication/resolve", ResolveRequest{
		Attrs: map[string]string{"title": "object matching with schema matching"},
		Limit: 1,
	}, &resp)
	if len(resp.Matches) > 1 {
		t.Fatalf("limit ignored: %+v", resp.Matches)
	}
}

func TestAddInstanceRecordsDelta(t *testing.T) {
	srv, sys := testServer(t)
	var resp AddInstanceResponse
	rec := doJSON(t, srv.Handler(), "POST", "/sets/ACM.Publication/instances", AddInstanceRequest{
		ID:    "g99",
		Attrs: map[string]string{"title": "a formal perspective on the view selection problem", "year": "2004"},
	}, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("add = %d: %s", rec.Code, rec.Body.String())
	}
	if len(resp.Matches) == 0 || resp.Matches[0].ID != "g1" || resp.Matches[0].Sim != 1 {
		t.Fatalf("arrival must match g1 exactly: %+v", resp)
	}
	if resp.Mapping != "live.ACM.Publication" {
		t.Fatalf("delta mapping name = %q", resp.Mapping)
	}
	// The delta is in the repository.
	m, ok := sys.Repo.Get("live.ACM.Publication")
	if !ok || !m.Has("g99", "g1") {
		t.Fatalf("repository delta missing: ok=%v m=%v", ok, m)
	}
	// The registered set grew too.
	set, _ := sys.ObjectSetByName("ACM.Publication")
	if !set.Has("g99") {
		t.Fatal("registered set must see the arrival")
	}
	// The instance is immediately resolvable.
	var rr ResolveResponse
	doJSON(t, srv.Handler(), "POST", "/sets/ACM.Publication/resolve", ResolveRequest{
		Attrs: map[string]string{"title": "a formal perspective on the view selection problem"},
	}, &rr)
	found := false
	for _, mt := range rr.Matches {
		if mt.ID == "g99" {
			found = true
		}
	}
	if !found {
		t.Fatalf("arrival not resolvable: %+v", rr.Matches)
	}

	// GET /mappings serves the delta.
	var mresp MappingResponse
	doJSON(t, srv.Handler(), "GET", "/mappings/live.ACM.Publication", nil, &mresp)
	if mresp.Len == 0 || mresp.Domain != "Publication@ACM" {
		t.Fatalf("mapping response = %+v", mresp)
	}
}

// TestReAddReplacesDelta: re-adding a live id must not self-match, and the
// delta mapping must forget the correspondences of the previous version.
func TestReAddReplacesDelta(t *testing.T) {
	srv, sys := testServer(t)
	add := func(title string) AddInstanceResponse {
		var resp AddInstanceResponse
		doJSON(t, srv.Handler(), "POST", "/sets/ACM.Publication/instances", AddInstanceRequest{
			ID:    "g99",
			Attrs: map[string]string{"title": title},
		}, &resp)
		return resp
	}
	first := add("a formal perspective on the view selection problem")
	if len(first.Matches) == 0 {
		t.Fatalf("first add must match g1: %+v", first)
	}
	// Replace with an unrelated title: no self-match, and the old g99->g1
	// correspondence must be gone.
	second := add("an unrelated replacement about nothing shared")
	for _, m := range second.Matches {
		if m.ID == "g99" {
			t.Fatalf("replace matched its own stale self: %+v", second)
		}
	}
	if m, ok := sys.Repo.Get("live.ACM.Publication"); ok {
		for _, c := range m.Correspondences() {
			if c.Domain == "g99" || c.Range == "g99" {
				t.Fatalf("stale delta survived the replace: %v", c)
			}
		}
	}
}

func TestRemoveInstance(t *testing.T) {
	srv, sys := testServer(t)
	// Seed a delta via an add.
	doJSON(t, srv.Handler(), "POST", "/sets/ACM.Publication/instances", AddInstanceRequest{
		ID:    "g99",
		Attrs: map[string]string{"title": "a formal perspective on the view selection problem"},
	}, nil)
	rec := doJSON(t, srv.Handler(), "DELETE", "/sets/ACM.Publication/instances/g99", nil, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("remove = %d: %s", rec.Code, rec.Body.String())
	}
	if m, ok := sys.Repo.Get("live.ACM.Publication"); ok {
		for _, c := range m.Correspondences() {
			if c.Domain == "g99" || c.Range == "g99" {
				t.Fatalf("delta still references removed instance: %v", c)
			}
		}
	}
	// Removed instances no longer resolve.
	var rr ResolveResponse
	doJSON(t, srv.Handler(), "POST", "/sets/ACM.Publication/resolve", ResolveRequest{
		Attrs: map[string]string{"title": "a formal perspective on the view selection problem"},
	}, &rr)
	for _, mt := range rr.Matches {
		if mt.ID == "g99" {
			t.Fatal("removed instance still resolves")
		}
	}
	// Double remove is a 404.
	if rec := doJSON(t, srv.Handler(), "DELETE", "/sets/ACM.Publication/instances/g99", nil, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("double remove = %d", rec.Code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	doJSON(t, srv.Handler(), "POST", "/sets/ACM.Publication/resolve", ResolveRequest{
		Attrs: map[string]string{"title": "view selection problem"},
	}, nil)
	doJSON(t, srv.Handler(), "GET", "/healthz", nil, nil)

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, want := range []string{
		`moma_requests_total{route="resolve",code="200"} 1`,
		`moma_requests_total{route="healthz",code="200"} 1`,
		`moma_request_duration_seconds_bucket{route="resolve",le="+Inf"} 1`,
		"moma_request_duration_seconds_count",
		"moma_uptime_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
}

// twoSetServer builds a system with two independently resolvable sets.
func twoSetServer(t *testing.T) (*Server, *moma.System, []string) {
	t.Helper()
	sys := moma.NewSystem()
	names := []string{"ACM.Publication", "DBLP.Publication"}
	for i, name := range names {
		src := moma.PDS(strings.SplitN(name, ".", 2)[0])
		set := moma.NewObjectSet(moma.LDS{Source: src, Type: moma.Publication})
		for j := 0; j < 8; j++ {
			set.AddNew(moma.ID(fmt.Sprintf("s%d-%d", i, j)), map[string]string{
				"title": fmt.Sprintf("shared benchmark topic number %d for source %d", j, i),
			})
		}
		if err := sys.AddObjectSet(name, set); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.RegisterResolver(name, moma.LiveConfig{
			MinShared: 2,
			Threshold: 0.5,
			Columns:   []moma.LiveColumn{{QueryAttr: "title", SetAttr: "title", Sim: moma.Trigram}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return New(sys), sys, names
}

// TestParallelSetsIndependent hammers two sets with concurrent adds,
// resolves, removes and mapping reads. Under -race this proves the per-set
// lock sharding: the two sets' handlers run genuinely in parallel and share
// no unsynchronized state, and each set's delta mapping ends up referencing
// only its own instances.
func TestParallelSetsIndependent(t *testing.T) {
	srv, sys, names := twoSetServer(t)
	h := srv.Handler()
	var wg sync.WaitGroup
	const rounds = 60
	for w, setName := range names {
		wg.Add(1)
		go func(w int, setName string) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				id := fmt.Sprintf("new%d-%d", w, i)
				var add AddInstanceResponse
				if rec := doJSON(t, h, "POST", "/sets/"+setName+"/instances", AddInstanceRequest{
					ID:    id,
					Attrs: map[string]string{"title": fmt.Sprintf("shared benchmark topic number %d for source %d", i%8, w)},
				}, &add); rec.Code != http.StatusOK {
					t.Errorf("%s add = %d: %s", setName, rec.Code, rec.Body.String())
					return
				}
				doJSON(t, h, "POST", "/sets/"+setName+"/resolve", ResolveRequest{
					Attrs: map[string]string{"title": "shared benchmark topic"},
				}, nil)
				doJSON(t, h, "GET", "/mappings/live."+setName, nil, nil)
				if i%3 == 0 {
					if rec := doJSON(t, h, "DELETE", "/sets/"+setName+"/instances/"+id, nil, nil); rec.Code != http.StatusOK {
						t.Errorf("%s remove = %d", setName, rec.Code)
						return
					}
				}
			}
		}(w, setName)
	}
	wg.Wait()
	for w, setName := range names {
		m, ok := sys.Repo.Get("live." + setName)
		if !ok {
			t.Fatalf("no delta mapping for %s", setName)
		}
		prefix := fmt.Sprintf("s%d-", w)
		newPrefix := fmt.Sprintf("new%d-", w)
		for _, c := range m.Correspondences() {
			for _, id := range []string{string(c.Domain), string(c.Range)} {
				if !strings.HasPrefix(id, prefix) && !strings.HasPrefix(id, newPrefix) {
					t.Fatalf("%s delta references foreign instance %s", setName, id)
				}
			}
		}
	}
}

func TestGetMappingNotFound(t *testing.T) {
	srv, _ := testServer(t)
	if rec := doJSON(t, srv.Handler(), "GET", "/mappings/nope", nil, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown mapping = %d", rec.Code)
	}
}
