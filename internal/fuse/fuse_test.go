package fuse

import (
	"reflect"
	"testing"

	"repro/internal/mapping"
	"repro/internal/model"
)

var (
	dblpPub = model.LDS{Source: "DBLP", Type: model.Publication}
	acmPub  = model.LDS{Source: "ACM", Type: model.Publication}
	gsPub   = model.LDS{Source: "GS", Type: model.Publication}
)

func fuseFixture() (*model.ObjectSet, *model.ObjectSet, *model.ObjectSet, *mapping.Mapping, *mapping.Mapping) {
	dblp := model.NewObjectSet(dblpPub)
	dblp.AddNew("d1", map[string]string{"title": "Cupid"})
	dblp.AddNew("d2", map[string]string{"title": "Formal Perspective"})
	dblp.AddNew("d3", map[string]string{"title": "Unmatched"})

	acm := model.NewObjectSet(acmPub)
	acm.AddNew("a1", map[string]string{"citations": "69", "pages": "49-58"})
	acm.AddNew("a2", map[string]string{"citations": "10"})

	gs := model.NewObjectSet(gsPub)
	gs.AddNew("g1", map[string]string{"citations": "102"})
	gs.AddNew("g2", map[string]string{"citations": "15"})
	gs.AddNew("g3", map[string]string{"citations": "4"})

	toACM := mapping.NewSame(dblpPub, acmPub)
	toACM.Add("d1", "a1", 1)
	toACM.Add("d2", "a2", 0.9)

	toGS := mapping.NewSame(dblpPub, gsPub)
	toGS.Add("d1", "g1", 1)
	toGS.Add("d2", "g2", 0.95)
	toGS.Add("d2", "g3", 0.85) // duplicate GS entry
	return dblp, acm, gs, toACM, toGS
}

func TestTraverse(t *testing.T) {
	_, _, _, toACM, _ := fuseFixture()
	got := Traverse(toACM, []model.ID{"d1", "d2", "d9"})
	want := []model.ID{"a1", "a2"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Traverse = %v, want %v", got, want)
	}
}

func TestFuseCitationsMax(t *testing.T) {
	dblp, acm, gs, toACM, toGS := fuseFixture()
	f := NewFuser(dblp)
	if err := f.Add(toACM, acm, Rule{FromAttr: "citations", ToAttr: "acm_citations", Agg: First}); err != nil {
		t.Fatal(err)
	}
	if err := f.Add(toGS, gs, Rule{FromAttr: "citations", ToAttr: "gs_citations", Agg: MaxNumeric}); err != nil {
		t.Fatal(err)
	}
	fused := f.Run()
	if got := fused.Get("d1").Attr("acm_citations"); got != "69" {
		t.Errorf("d1 acm_citations = %q", got)
	}
	if got := fused.Get("d2").Attr("gs_citations"); got != "15" {
		t.Errorf("d2 gs_citations = %q, want max(15,4)", got)
	}
	if fused.Get("d3").HasAttr("acm_citations") {
		t.Error("unmatched instance should not gain attributes")
	}
	// Base set untouched.
	if dblp.Get("d1").HasAttr("acm_citations") {
		t.Error("Run must not modify the base set")
	}
}

func TestFuseSumOverDuplicates(t *testing.T) {
	dblp, _, gs, _, toGS := fuseFixture()
	f := NewFuser(dblp)
	f.Add(toGS, gs, Rule{FromAttr: "citations", ToAttr: "gs_total", Agg: SumNumeric})
	fused := f.Run()
	if got := fused.Get("d2").Attr("gs_total"); got != "19" {
		t.Errorf("d2 gs_total = %q, want 19 (15+4)", got)
	}
}

func TestFuseMinSim(t *testing.T) {
	dblp, _, gs, _, toGS := fuseFixture()
	f := NewFuser(dblp)
	f.Add(toGS, gs, Rule{FromAttr: "citations", ToAttr: "gs_strict", Agg: SumNumeric, MinSim: 0.9})
	fused := f.Run()
	if got := fused.Get("d2").Attr("gs_strict"); got != "15" {
		t.Errorf("d2 gs_strict = %q, want 15 (g3 below MinSim)", got)
	}
}

func TestFuseEndpointValidation(t *testing.T) {
	dblp, acm, _, toACM, _ := fuseFixture()
	f := NewFuser(acm)
	if err := f.Add(toACM, acm); err == nil {
		t.Error("mapping domain mismatch should fail")
	}
	f2 := NewFuser(dblp)
	if err := f2.Add(toACM, dblp); err == nil {
		t.Error("mapping range mismatch should fail")
	}
}

func TestAggFuncs(t *testing.T) {
	if v, ok := First([]string{"", "x", "y"}); !ok || v != "x" {
		t.Errorf("First = %q, %v", v, ok)
	}
	if _, ok := First([]string{"", ""}); ok {
		t.Error("First of empties should report false")
	}
	if v, ok := MaxNumeric([]string{"3", "x", "7", "5"}); !ok || v != "7" {
		t.Errorf("MaxNumeric = %q, %v", v, ok)
	}
	if _, ok := MaxNumeric([]string{"x"}); ok {
		t.Error("MaxNumeric of non-numbers should report false")
	}
	if v, ok := SumNumeric([]string{"1", "2", "oops", "3"}); !ok || v != "6" {
		t.Errorf("SumNumeric = %q, %v", v, ok)
	}
	if v, ok := Longest([]string{"ab", "abcd", "c"}); !ok || v != "abcd" {
		t.Errorf("Longest = %q, %v", v, ok)
	}
	if _, ok := Longest(nil); ok {
		t.Error("Longest of nothing should report false")
	}
}

func TestCoverageReport(t *testing.T) {
	dblp, acm, _, toACM, _ := fuseFixture()
	f := NewFuser(dblp)
	f.Add(toACM, acm, Rule{FromAttr: "citations", ToAttr: "c", Agg: First})
	fused := f.Run()
	rep := CoverageReport(fused, "c", "missing")
	if rep["c"] != 2 || rep["missing"] != 0 {
		t.Errorf("coverage = %v", rep)
	}
}

func TestFusePreferenceOrderBySim(t *testing.T) {
	// First-aggregation must prefer the higher-similarity correspondence.
	dblp := model.NewObjectSet(dblpPub)
	dblp.AddNew("d", nil)
	acm := model.NewObjectSet(acmPub)
	acm.AddNew("low", map[string]string{"v": "worse"})
	acm.AddNew("high", map[string]string{"v": "better"})
	m := mapping.NewSame(dblpPub, acmPub)
	m.Add("d", "low", 0.5)
	m.Add("d", "high", 0.9)
	f := NewFuser(dblp)
	f.Add(m, acm, Rule{FromAttr: "v", ToAttr: "v", Agg: First})
	if got := f.Run().Get("d").Attr("v"); got != "better" {
		t.Errorf("v = %q, want the higher-similarity source", got)
	}
}
