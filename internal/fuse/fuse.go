// Package fuse implements the iFuice-side payoff of object matching:
// using same-mappings to traverse between peers and to "fuse together and
// enhance information on equivalent objects for data analysis and query
// answering" (§1, §4). The canonical example from the paper: combine DBLP
// publications with their matching ACM DL and Google Scholar publications
// to obtain additional attribute values like citation counts.
package fuse

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/mapping"
	"repro/internal/model"
)

// Traverse follows a mapping from the given ids and returns the reached
// range ids (deduplicated, in first-reached order). It is iFuice's map
// traversal primitive. Each id walks its byDomain posting list in place —
// no per-id correspondence slices are copied.
func Traverse(m *mapping.Mapping, ids []model.ID) []model.ID {
	seen := make(map[model.ID]bool)
	var out []model.ID
	for _, id := range ids {
		m.EachForDomain(id, func(c mapping.Correspondence) bool {
			if !seen[c.Range] {
				seen[c.Range] = true
				out = append(out, c.Range)
			}
			return true
		})
	}
	return out
}

// AggFunc folds the attribute values collected from matched instances.
type AggFunc func(values []string) (string, bool)

// Built-in aggregation functions for fusing attribute values.
var (
	// First takes the first non-empty value (source order = preference
	// order).
	First AggFunc = func(vs []string) (string, bool) {
		for _, v := range vs {
			if v != "" {
				return v, true
			}
		}
		return "", false
	}
	// MaxNumeric takes the largest numeric value — the right choice for
	// citation counts where sources undercount.
	MaxNumeric AggFunc = func(vs []string) (string, bool) {
		best, ok := 0.0, false
		for _, v := range vs {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				continue
			}
			if !ok || f > best {
				best, ok = f, true
			}
		}
		if !ok {
			return "", false
		}
		return strconv.FormatFloat(best, 'g', -1, 64), true
	}
	// SumNumeric adds numeric values (e.g. citation counts of duplicate GS
	// entries of one publication).
	SumNumeric AggFunc = func(vs []string) (string, bool) {
		sum, ok := 0.0, false
		for _, v := range vs {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				continue
			}
			sum += f
			ok = true
		}
		if !ok {
			return "", false
		}
		return strconv.FormatFloat(sum, 'g', -1, 64), true
	}
	// Longest prefers the most detailed value.
	Longest AggFunc = func(vs []string) (string, bool) {
		best, ok := "", false
		for _, v := range vs {
			if len(v) > len(best) {
				best, ok = v, true
			}
		}
		return best, ok
	}
)

// Rule fuses one attribute: the values of FromAttr on matched range
// instances are aggregated with Agg and stored as ToAttr on the domain
// instance. MinSim filters which correspondences contribute.
type Rule struct {
	FromAttr string
	ToAttr   string
	Agg      AggFunc
	MinSim   float64
}

// Fuser enriches a base object set with attributes from matched instances
// in other sources, one (mapping, object set) pair at a time.
type Fuser struct {
	base    *model.ObjectSet
	sources []fuseSource
}

type fuseSource struct {
	m     *mapping.Mapping
	set   *model.ObjectSet
	rules []Rule
}

// NewFuser starts a fusion over the base set.
func NewFuser(base *model.ObjectSet) *Fuser { return &Fuser{base: base} }

// Add registers a matched source: m must map the base LDS to set's LDS.
func (f *Fuser) Add(m *mapping.Mapping, set *model.ObjectSet, rules ...Rule) error {
	if m.Domain() != f.base.LDS() {
		return fmt.Errorf("fuse: mapping domain %s does not match base %s", m.Domain(), f.base.LDS())
	}
	if m.Range() != set.LDS() {
		return fmt.Errorf("fuse: mapping range %s does not match source %s", m.Range(), set.LDS())
	}
	f.sources = append(f.sources, fuseSource{m: m, set: set, rules: rules})
	return nil
}

// Run produces a fused copy of the base set: every rule's aggregated value
// is attached to each base instance. The base set is not modified.
func (f *Fuser) Run() *model.ObjectSet {
	out := f.base.Clone()
	out.Each(func(in *model.Instance) bool {
		for _, src := range f.sources {
			corrs := src.m.ForDomain(in.ID)
			// Deterministic contribution order: by similarity descending,
			// then range id.
			sort.Slice(corrs, func(i, j int) bool {
				if corrs[i].Sim != corrs[j].Sim {
					return corrs[i].Sim > corrs[j].Sim
				}
				return corrs[i].Range < corrs[j].Range
			})
			for _, rule := range src.rules {
				var values []string
				for _, c := range corrs {
					if c.Sim < rule.MinSim {
						continue
					}
					if other := src.set.Get(c.Range); other != nil {
						values = append(values, other.Attr(rule.FromAttr))
					}
				}
				if v, ok := rule.Agg(values); ok {
					in.SetAttr(rule.ToAttr, v)
				}
			}
		}
		return true
	})
	return out
}

// CoverageReport summarizes how many base instances gained each fused
// attribute — the paper's motivation metric for P2P fusion.
func CoverageReport(fused *model.ObjectSet, attrs ...string) map[string]int {
	out := make(map[string]int, len(attrs))
	for _, a := range attrs {
		count := 0
		fused.Each(func(in *model.Instance) bool {
			if in.HasAttr(a) {
				count++
			}
			return true
		})
		out[a] = count
	}
	return out
}
