// Package experiments defines one reproduction per table and figure of the
// paper's evaluation (§5), shared by the go-test benchmarks and the
// cmd/moma-bench harness. Each experiment returns a TableResult carrying
// both the rendered rows (in the paper's format) and the raw metrics so
// tests can assert the qualitative shape: which matcher wins, where
// combination helps, where compose paths fail.
package experiments

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/eval"
	"repro/internal/mapping"
	"repro/internal/match"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/sources"
	"repro/internal/store"
)

// Setting is the evaluation environment: the generated dataset, the
// query-collected Google Scholar working set, a mapping repository holding
// the association mappings, and memoized intermediate same-mappings shared
// between tables (the paper re-uses its Table 2 publication mapping in
// §5.4.1, the §5.4.1 venue mapping in §5.4.2, and so on).
type Setting struct {
	D      *sources.Dataset
	GSWork *model.ObjectSet
	Repo   *store.Store

	memo map[string]*mapping.Mapping
}

// TableResult is a rendered experiment outcome.
type TableResult struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Metrics keys the raw results by strategy label for shape assertions.
	Metrics map[string]eval.Result
	Notes   []string
}

// Render converts the result into an eval.Table for printing.
func (t *TableResult) Render() string {
	tab := eval.NewTable(t.ID+". "+t.Title, t.Columns...)
	for _, r := range t.Rows {
		tab.AddRow(r...)
	}
	s := tab.String()
	for _, n := range t.Notes {
		s += "  note: " + n + "\n"
	}
	return s
}

// NewSetting generates the dataset for cfg, collects the GS working set by
// querying (the only access path to GS), and loads the repository with the
// pre-existing association mappings and GS links.
func NewSetting(cfg sources.Config) *Setting {
	d := sources.Generate(cfg)
	q := sources.NewGSQuery(d.GS)
	work := q.CollectFor(d.DBLP.Pubs, "title", 15)

	repo := store.NewRepository()
	put := func(name string, m *mapping.Mapping) {
		if m != nil {
			if err := repo.Put(name, m); err != nil {
				panic(err) // static wiring over fresh store cannot fail
			}
		}
	}
	put("DBLP.VenuePub", d.DBLP.VenuePub)
	put("DBLP.PubVenue", d.DBLP.PubVenue)
	put("DBLP.AuthorPub", d.DBLP.AuthorPub)
	put("DBLP.PubAuthor", d.DBLP.PubAuthor)
	put("DBLP.CoAuthor", d.DBLP.CoAuthor)
	put("ACM.VenuePub", d.ACM.VenuePub)
	put("ACM.PubVenue", d.ACM.PubVenue)
	put("ACM.AuthorPub", d.ACM.AuthorPub)
	put("ACM.PubAuthor", d.ACM.PubAuthor)
	put("ACM.CoAuthor", d.ACM.CoAuthor)
	put("GS.AuthorPub", d.GS.AuthorPub)
	put("GS.PubAuthor", d.GS.PubAuthor)
	put("GS-ACM.links", d.GSLinksACM)

	return &Setting{D: d, GSWork: work, Repo: repo, memo: make(map[string]*mapping.Mapping)}
}

// NewPaperSetting builds the full Table 1 scale setting.
func NewPaperSetting() *Setting { return NewSetting(sources.PaperConfig()) }

// NewSmallSetting builds the reduced test-scale setting.
func NewSmallSetting() *Setting { return NewSetting(sources.SmallConfig()) }

// cached memoizes an intermediate mapping under a key.
func (s *Setting) cached(key string, build func() (*mapping.Mapping, error)) (*mapping.Mapping, error) {
	if m, ok := s.memo[key]; ok {
		return m, nil
	}
	m, err := build()
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", key, err)
	}
	s.memo[key] = m
	return m, nil
}

// Matcher configurations shared by the tables. Thresholds follow the
// paper's published parameters where stated (trigram 0.5 for the dedup
// script, 80% selection for Table 2's merge); the rest are calibrated once
// here and used consistently.
const (
	titleThreshold   = 0.82
	authorsThreshold = 0.8
	gsTitleThreshold = 0.75
	nameThreshold    = 0.8
	nameLowThreshold = 0.5
)

// titleMatcherDBLPACM is the Table 2 "Title" matcher: trigram over DBLP
// title vs ACM name, with token blocking for scale.
func (s *Setting) titleMatcherDBLPACM() match.Matcher {
	return &match.Attribute{
		MatcherName: "Title",
		AttrA:       "title", AttrB: "name",
		Sim:       sim.Trigram,
		Threshold: titleThreshold,
		Blocker:   block.TokenBlocking{AttrA: "title", AttrB: "name", MinShared: 2},
	}
}

// authorMatcherDBLPACM is the Table 2 "Author" matcher: trigram over the
// concatenated author lists of publications.
func (s *Setting) authorMatcherDBLPACM() match.Matcher {
	return &match.Attribute{
		MatcherName: "Author",
		AttrA:       "authors", AttrB: "authors",
		Sim:       sim.Trigram,
		Threshold: authorsThreshold,
		Blocker:   block.TokenBlocking{AttrA: "authors", AttrB: "authors", MinShared: 2},
	}
}

// yearMatcherDBLPACM is the Table 2 "Year" matcher: exact year equality.
// Blocking on the year token makes it the equi-join it semantically is.
func (s *Setting) yearMatcherDBLPACM() match.Matcher {
	return &match.Attribute{
		MatcherName: "Year",
		AttrA:       "year", AttrB: "year",
		Sim:         sim.YearExact,
		Threshold:   1,
		SkipMissing: true,
		Blocker:     block.TokenBlocking{AttrA: "year", AttrB: "year", MinShared: 1},
	}
}

// PubSameTitleDBLPACM returns (memoized) the publication same-mapping from
// the title matcher alone — the baseline the neighborhood experiments
// start from.
func (s *Setting) PubSameTitleDBLPACM() (*mapping.Mapping, error) {
	return s.cached("pub-title-dblp-acm", func() (*mapping.Mapping, error) {
		return s.titleMatcherDBLPACM().Match(s.D.DBLP.Pubs, s.D.ACM.Pubs)
	})
}

// PubSameMergedDBLPACM returns the Table 2 merged publication mapping:
// weighted merge of title, author and year evidence with missing-as-zero,
// followed by the 80% threshold selection.
func (s *Setting) PubSameMergedDBLPACM() (*mapping.Mapping, error) {
	return s.cached("pub-merged-dblp-acm", func() (*mapping.Mapping, error) {
		title, err := s.PubSameTitleDBLPACM()
		if err != nil {
			return nil, err
		}
		author, err := s.authorMatcherDBLPACM().Match(s.D.DBLP.Pubs, s.D.ACM.Pubs)
		if err != nil {
			return nil, err
		}
		year, err := s.yearMatcherDBLPACM().Match(s.D.DBLP.Pubs, s.D.ACM.Pubs)
		if err != nil {
			return nil, err
		}
		merged, err := mapping.Merge(mapping.Combiner{
			Kind:          mapping.Weighted,
			Weights:       []float64{3, 1, 2},
			MissingAsZero: true,
		}, title, author, year)
		if err != nil {
			return nil, err
		}
		return mapping.Threshold{T: 0.8}.Apply(merged), nil
	})
}

// DBLPGSTitle returns the direct DBLP-GS publication mapping from title
// matching over the query-collected working set. GS titles carry heavy
// extraction noise, so the threshold is lower than for ACM.
func (s *Setting) DBLPGSTitle() (*mapping.Mapping, error) {
	return s.cached("pub-title-dblp-gs", func() (*mapping.Mapping, error) {
		m := &match.Attribute{
			MatcherName: "Title(GS)",
			AttrA:       "title", AttrB: "title",
			Sim:       sim.Trigram,
			Threshold: gsTitleThreshold,
			Blocker:   block.TokenBlocking{AttrA: "title", AttrB: "title", MinShared: 2},
		}
		return m.Match(s.D.DBLP.Pubs, s.GSWork)
	})
}

// GSACMDirect returns the "direct" GS-ACM mapping: the pre-existing links
// GS carries to ACM, restricted to the working set (§5.3).
func (s *Setting) GSACMDirect() (*mapping.Mapping, error) {
	return s.cached("pub-links-gs-acm", func() (*mapping.Mapping, error) {
		em := &match.ExistingMapping{MatcherName: "GS-ACM links", M: s.D.GSLinksACM}
		return em.Match(s.GSWork, s.D.ACM.Pubs)
	})
}

// VenueSameDBLPACM returns the venue same-mapping from the 1:n
// neighborhood matcher with Best-1 selection — the Table 4 configuration
// that §5.4.2 re-uses.
func (s *Setting) VenueSameDBLPACM() (*mapping.Mapping, error) {
	return s.cached("venue-same-dblp-acm", func() (*mapping.Mapping, error) {
		pubSame, err := s.PubSameTitleDBLPACM()
		if err != nil {
			return nil, err
		}
		nh, err := match.NhMatch(s.D.DBLP.VenuePub, pubSame, s.D.ACM.PubVenue)
		if err != nil {
			return nil, err
		}
		return mapping.BestN{N: 1, Side: mapping.DomainSide}.Apply(nh), nil
	})
}

// perfectDBLPGSWorking restricts the strict DBLP-GS perfect mapping to GS
// entries (the full mapping also counts entries no query retrieved; both
// views are reported in Table 3/7 notes).
func (s *Setting) perfectDBLPGSWorking() *mapping.Mapping {
	return s.D.Perfect.PubDBLPGS.Filter(func(c mapping.Correspondence) bool {
		return s.GSWork.Has(c.Range)
	})
}

// perfectGSACMWorking restricts the GS-ACM perfect mapping to the working
// set.
func (s *Setting) perfectGSACMWorking() *mapping.Mapping {
	return s.D.Perfect.PubGSACM.Filter(func(c mapping.Correspondence) bool {
		return s.GSWork.Has(c.Domain)
	})
}

// venueKindGroup groups venue correspondences into the paper's
// conference/journal breakdown.
func (s *Setting) venueKindGroup() eval.GroupFunc {
	return eval.AttrGroup(s.D.DBLP.Venues, "kind")
}

// pubKindGroup groups publication correspondences by their venue kind.
func (s *Setting) pubKindGroup() eval.GroupFunc {
	return eval.AttrGroup(s.D.DBLP.Pubs, "kind")
}
