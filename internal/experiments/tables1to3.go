package experiments

import (
	"fmt"

	"repro/internal/eval"
	"repro/internal/mapping"
)

// Table1 reports the instance counts of the three sources (paper Table 1:
// DBLP 130 venues / 2 616 publications / 3 319 authors; ACM 128 / 2 294 /
// 3 547; Google Scholar 64 263 publications, author count in parentheses
// because GS authors are extracted reference strings).
func Table1(s *Setting) (*TableResult, error) {
	t := &TableResult{
		ID:      "Table 1",
		Title:   "Number of instances for the considered data sources",
		Columns: []string{"Source", "Venues", "Publications", "Authors"},
		Metrics: map[string]eval.Result{},
	}
	t.Rows = append(t.Rows,
		[]string{"DBLP", fmt.Sprint(s.D.DBLP.Venues.Len()), fmt.Sprint(s.D.DBLP.Pubs.Len()), fmt.Sprint(s.D.DBLP.Authors.Len())},
		[]string{"ACM DL", fmt.Sprint(s.D.ACM.Venues.Len()), fmt.Sprint(s.D.ACM.Pubs.Len()), fmt.Sprint(s.D.ACM.Authors.Len())},
		[]string{"Google Scholar", "-", fmt.Sprint(s.D.GS.Pubs.Len()), fmt.Sprintf("(%d)", s.D.GS.Authors.Len())},
	)
	t.Notes = append(t.Notes,
		fmt.Sprintf("GS working set collected via %d title queries: %d entries", s.D.DBLP.Pubs.Len(), s.GSWork.Len()))
	return t, nil
}

// Table2 reproduces "Matching DBLP-ACM publications using attribute
// matchers": Title, Author and Year matchers individually plus their merge
// (weighted, missing-as-zero, 80% threshold).
func Table2(s *Setting) (*TableResult, error) {
	title, err := s.PubSameTitleDBLPACM()
	if err != nil {
		return nil, err
	}
	author, err := s.authorMatcherDBLPACM().Match(s.D.DBLP.Pubs, s.D.ACM.Pubs)
	if err != nil {
		return nil, err
	}
	year, err := s.yearMatcherDBLPACM().Match(s.D.DBLP.Pubs, s.D.ACM.Pubs)
	if err != nil {
		return nil, err
	}
	merged, err := s.PubSameMergedDBLPACM()
	if err != nil {
		return nil, err
	}
	perfect := s.D.Perfect.PubDBLPACM
	metrics := map[string]eval.Result{
		"Title":  eval.Compare(title, perfect),
		"Author": eval.Compare(author, perfect),
		"Year":   eval.Compare(year, perfect),
		"Merge":  eval.Compare(merged, perfect),
	}
	names := []string{"Title", "Author", "Year", "Merge"}
	t := &TableResult{
		ID:      "Table 2",
		Title:   "Matching DBLP-ACM publications using attribute matchers",
		Columns: append([]string{"Metric"}, names...),
		Metrics: metrics,
	}
	addMetricRows(t, names, metrics)
	return t, nil
}

// addMetricRows appends the Precision/Recall/F-Measure rows in the paper's
// matrix layout.
func addMetricRows(t *TableResult, names []string, metrics map[string]eval.Result) {
	row := func(label string, get func(eval.Result) float64) {
		cells := []string{label}
		for _, n := range names {
			cells = append(cells, eval.Pct(get(metrics[n])))
		}
		t.Rows = append(t.Rows, cells)
	}
	row("Precision", func(r eval.Result) float64 { return r.Precision })
	row("Recall", func(r eval.Result) float64 { return r.Recall })
	row("F-Measure", func(r eval.Result) float64 { return r.F1 })
}

// Table3 reproduces "Matching publications via different compose paths":
// for each source pair the direct mapping, the mapping composed via the
// third source, and their merge.
func Table3(s *Setting) (*TableResult, error) {
	dblpACM, err := s.PubSameTitleDBLPACM()
	if err != nil {
		return nil, err
	}
	dblpGS, err := s.DBLPGSTitle()
	if err != nil {
		return nil, err
	}
	gsACM, err := s.GSACMDirect()
	if err != nil {
		return nil, err
	}

	// Composed alternatives (f=Min per path, Max over paths — same-mapping
	// composition should stay 1:1-ish, §4.1.2).
	composeF, composeG := mapping.MinCombiner, mapping.AggMax
	// DBLP-GS via ACM: DBLP-ACM ∘ inverse(GS-ACM links).
	dblpGSviaACM, err := mapping.Compose(dblpACM, gsACM.Inverse(), composeF, composeG)
	if err != nil {
		return nil, err
	}
	// DBLP-ACM via GS: DBLP-GS ∘ GS-ACM links.
	dblpACMviaGS, err := mapping.Compose(dblpGS, gsACM, composeF, composeG)
	if err != nil {
		return nil, err
	}
	// GS-ACM via DBLP (the hub path): inverse(DBLP-GS) ∘ DBLP-ACM.
	gsACMviaDBLP, err := mapping.Compose(dblpGS.Inverse(), dblpACM, composeF, composeG)
	if err != nil {
		return nil, err
	}

	// Merge prefers the direct mapping; the composed path only contributes
	// correspondences for uncovered objects, so the merged result "retains
	// the match quality level of the best alternative" (§5.3).
	mergePrefer := func(a, b *mapping.Mapping) (*mapping.Mapping, error) {
		return mapping.Merge(mapping.PreferCombiner(0), a, b)
	}
	dblpGSMerged, err := mergePrefer(dblpGS, dblpGSviaACM)
	if err != nil {
		return nil, err
	}
	dblpACMMerged, err := mergePrefer(dblpACM, dblpACMviaGS)
	if err != nil {
		return nil, err
	}
	gsACMMerged, err := mergePrefer(gsACMviaDBLP, gsACM)
	if err != nil {
		return nil, err
	}

	perfDBLPGS := s.perfectDBLPGSWorking()
	perfGSACM := s.perfectGSACMWorking()
	perfDBLPACM := s.D.Perfect.PubDBLPACM

	metrics := map[string]eval.Result{
		"DBLP-GS direct":   eval.Compare(dblpGS, perfDBLPGS),
		"DBLP-GS compose":  eval.Compare(dblpGSviaACM, perfDBLPGS),
		"DBLP-GS merge":    eval.Compare(dblpGSMerged, perfDBLPGS),
		"DBLP-ACM direct":  eval.Compare(dblpACM, perfDBLPACM),
		"DBLP-ACM compose": eval.Compare(dblpACMviaGS, perfDBLPACM),
		"DBLP-ACM merge":   eval.Compare(dblpACMMerged, perfDBLPACM),
		"GS-ACM direct":    eval.Compare(gsACM, perfGSACM),
		"GS-ACM compose":   eval.Compare(gsACMviaDBLP, perfGSACM),
		"GS-ACM merge":     eval.Compare(gsACMMerged, perfGSACM),
	}
	t := &TableResult{
		ID:      "Table 3",
		Title:   "Matching publications via different compose paths (F-Measure)",
		Columns: []string{"Matcher", "DBLP - GS (via ACM)", "DBLP - ACM (via GS)", "GS - ACM (via DBLP)"},
		Metrics: metrics,
	}
	row := func(label string, keys ...string) {
		cells := []string{label}
		for _, k := range keys {
			cells = append(cells, eval.Pct(metrics[k].F1))
		}
		t.Rows = append(t.Rows, cells)
	}
	row("Direct", "DBLP-GS direct", "DBLP-ACM direct", "GS-ACM direct")
	row("Compose", "DBLP-GS compose", "DBLP-ACM compose", "GS-ACM compose")
	row("Merge", "DBLP-GS merge", "DBLP-ACM merge", "GS-ACM merge")
	t.Notes = append(t.Notes,
		"GS evaluation is strict: every duplicate GS entry of a publication must be matched (§5.6)",
		fmt.Sprintf("existing GS-ACM links: %d of %d true pairs (recall %s)",
			gsACM.Len(), perfGSACM.Len(), eval.Pct(metrics["GS-ACM direct"].Recall)))
	return t, nil
}
