package experiments

import (
	"fmt"
	"sort"

	"repro/internal/block"
	"repro/internal/eval"
	"repro/internal/mapping"
	"repro/internal/match"
	"repro/internal/model"
	"repro/internal/script"
	"repro/internal/sim"
)

// gsAuthorSame derives the author same-mapping between DBLP and the GS
// working set's authors via an initial-aware name matcher — the
// prerequisite step §5.4.3 describes ("we first had to determine an author
// same-mapping between GS and DBLP for which we applied an attribute
// matcher"; GS reduces first names to initials).
func (s *Setting) gsAuthorSame() (*mapping.Mapping, error) {
	return s.cached("author-same-dblp-gs", func() (*mapping.Mapping, error) {
		m := &match.Attribute{
			MatcherName: "Author name (GS)",
			AttrA:       "name", AttrB: "name",
			Sim:       sim.PersonName,
			Threshold: 0.85,
			Blocker:   block.TokenBlocking{AttrA: "name", AttrB: "name", MinShared: 1},
		}
		return m.Match(s.D.DBLP.Authors, s.D.GS.Authors)
	})
}

// nhPubViaAuthors runs the n:m neighborhood matcher for publications using
// the author same-mapping, with RelativeLeft because the GS author lists
// are incomplete (§5.4.3).
func (s *Setting) nhPubViaAuthors() (*mapping.Mapping, error) {
	return s.cached("nh-pub-dblp-gs", func() (*mapping.Mapping, error) {
		authorSame, err := s.gsAuthorSame()
		if err != nil {
			return nil, err
		}
		nh, err := match.NhMatchAgg(s.D.DBLP.PubAuthor, authorSame, s.D.GS.AuthorPub, mapping.AggRelativeLeft)
		if err != nil {
			return nil, err
		}
		// Restrict to the query-collected working set and keep only
		// well-supported pairs.
		nh = nh.Filter(func(c mapping.Correspondence) bool { return s.GSWork.Has(c.Range) })
		return mapping.Threshold{T: 0.6}.Apply(nh), nil
	})
}

// Table7 reproduces "Matching DBLP-GS publications with the help of
// neighborhood matcher based on author same-mapping (n:m)". The merge
// prefers the title mapping and lets the neighborhood matcher contribute
// correspondences only for publications the title matcher left uncovered —
// raising recall while precision stays put, exactly the effect §5.4.3
// reports.
func Table7(s *Setting) (*TableResult, error) {
	title, err := s.DBLPGSTitle()
	if err != nil {
		return nil, err
	}
	nh, err := s.nhPubViaAuthors()
	if err != nil {
		return nil, err
	}
	// Merge: the title mapping is preferred; the neighborhood matcher
	// contributes its best correspondence only for GS entries the title
	// matcher left uncovered (truncated/garbled titles). This is PreferMap
	// applied per GS entry — recall rises while precision stays at the
	// title matcher's level, exactly the §5.4.3 effect.
	nhBest := mapping.Threshold{T: 0.8}.Apply(mapping.BestN{N: 1, Side: mapping.RangeSide}.Apply(nh))
	merged, err := preferPerRange(title, nhBest)
	if err != nil {
		return nil, err
	}
	perfect := s.perfectDBLPGSWorking()
	metrics := map[string]eval.Result{
		"Attribute (Title)":     eval.Compare(title, perfect),
		"Neighborhood (Author)": eval.Compare(nh, perfect),
		"Merge":                 eval.Compare(merged, perfect),
	}
	names := []string{"Attribute (Title)", "Neighborhood (Author)", "Merge"}
	t := &TableResult{
		ID:      "Table 7",
		Title:   "Matching DBLP-GS publications with the help of neighborhood matcher (n:m)",
		Columns: append([]string{"Metric"}, names...),
		Metrics: metrics,
	}
	addMetricRows(t, names, metrics)
	full := eval.Compare(merged, s.D.Perfect.PubDBLPGS)
	t.Notes = append(t.Notes,
		fmt.Sprintf("against the full perfect mapping (incl. never-retrieved GS entries): F=%s", eval.Pct(full.F1)))
	return t, nil
}

// Table8 reproduces the same strategy for GS-ACM publications.
func Table8(s *Setting) (*TableResult, error) {
	// Direct title matcher GS->ACM over the working set.
	titleMatcher := &match.Attribute{
		MatcherName: "Title(GS-ACM)",
		AttrA:       "title", AttrB: "name",
		Sim:       sim.Trigram,
		Threshold: gsTitleThreshold,
		Blocker:   block.TokenBlocking{AttrA: "title", AttrB: "name", MinShared: 2},
	}
	title, err := titleMatcher.Match(s.GSWork, s.D.ACM.Pubs)
	if err != nil {
		return nil, err
	}
	// Author same-mapping GS->ACM.
	authorSame, err := s.cached("author-same-gs-acm", func() (*mapping.Mapping, error) {
		m := &match.Attribute{
			MatcherName: "Author name (GS-ACM)",
			AttrA:       "name", AttrB: "name",
			Sim:       sim.PersonName,
			Threshold: 0.85,
			Blocker:   block.TokenBlocking{AttrA: "name", AttrB: "name", MinShared: 1},
		}
		return m.Match(s.D.GS.Authors, s.D.ACM.Authors)
	})
	if err != nil {
		return nil, err
	}
	// n:m neighborhood, RelativeRight this time: the INCOMPLETE author
	// lists sit on the left (GS), so normalizing by the ACM side keeps the
	// same asymmetry §5.4.3 motivates.
	nh, err := match.NhMatchAgg(s.D.GS.PubAuthor, authorSame, s.D.ACM.AuthorPub, mapping.AggRelativeRight)
	if err != nil {
		return nil, err
	}
	nh = nh.Filter(func(c mapping.Correspondence) bool { return s.GSWork.Has(c.Domain) })
	nh = mapping.Threshold{T: 0.6}.Apply(nh)

	// Merge as in Table 7; here the GS entries are the domain side, so the
	// plain PreferMap combiner already has per-entry semantics.
	// Additions require corroboration: the neighborhood's best pick per GS
	// entry must also show at least weak title evidence, killing the
	// single-author name coincidences of noise entries while keeping the
	// truncated-title entries the author evidence recovers.
	weakTitle, err := (&match.Attribute{
		MatcherName: "Title(weak)",
		AttrA:       "title", AttrB: "name",
		Sim:       sim.Trigram,
		Threshold: 0.35,
		Blocker:   block.TokenBlocking{AttrA: "title", AttrB: "name", MinShared: 1},
	}).Match(s.GSWork, s.D.ACM.Pubs)
	if err != nil {
		return nil, err
	}
	nhBest := mapping.BestN{N: 1, Side: mapping.DomainSide}.Apply(nh)
	nhBest = nhBest.Filter(func(c mapping.Correspondence) bool {
		return c.Sim >= 0.8 && weakTitle.Has(c.Domain, c.Range)
	})
	merged, err := mapping.Merge(mapping.PreferCombiner(0), title, nhBest)
	if err != nil {
		return nil, err
	}
	perfect := s.perfectGSACMWorking()
	metrics := map[string]eval.Result{
		"Attribute (Title)":     eval.Compare(title, perfect),
		"Neighborhood (Author)": eval.Compare(nh, perfect),
		"Merge":                 eval.Compare(merged, perfect),
	}
	names := []string{"Attribute (Title)", "Neighborhood (Author)", "Merge"}
	t := &TableResult{
		ID:      "Table 8",
		Title:   "Matching GS-ACM publications with the help of neighborhood matcher (n:m)",
		Columns: append([]string{"Metric"}, names...),
		Metrics: metrics,
	}
	addMetricRows(t, names, metrics)
	return t, nil
}

// DuplicateCandidate is one row of Table 9.
type DuplicateCandidate struct {
	A, B          model.ID
	NameA, NameB  string
	CoAuthorSim   float64
	SharedCoAuths int
	NameSim       float64
	MergedSim     float64
	TrueDuplicate bool
}

// Table9 reproduces "Top-5 author duplicate candidates within DBLP" by
// executing the §4.3 script verbatim through the script interpreter:
// co-author neighborhood matching merged with trigram name similarity,
// trivial duplicates removed.
func Table9(s *Setting) (*TableResult, error) {
	result, cands, err := s.duplicateCandidates(5)
	if err != nil {
		return nil, err
	}
	t := &TableResult{
		ID:      "Table 9",
		Title:   "Top-5 author duplicate candidates within DBLP",
		Columns: []string{"Author", "Author'", "Co-Author", "(paths)", "Name", "Merge", "True dup?"},
		Metrics: map[string]eval.Result{},
	}
	for _, c := range cands {
		t.Rows = append(t.Rows, []string{
			c.NameA, c.NameB,
			eval.Pct(c.CoAuthorSim), fmt.Sprintf("(%d)", c.SharedCoAuths),
			eval.Pct(c.NameSim), eval.Pct(c.MergedSim),
			fmt.Sprintf("%v", c.TrueDuplicate),
		})
	}
	// Quality of the whole candidate ranking against the known duplicates.
	t.Metrics["dedup"] = eval.Compare(result, s.D.Perfect.AuthorDupsDBLP)
	t.Notes = append(t.Notes, fmt.Sprintf("ground truth: %d duplicate pairs (directed)", s.D.Perfect.AuthorDupsDBLP.Len()))
	return t, nil
}

// duplicateCandidates runs the dedup script and extracts the top-k ranked
// candidate pairs (undirected, deduplicated).
func (s *Setting) duplicateCandidates(k int) (*mapping.Mapping, []DuplicateCandidate, error) {
	binding := script.NewBinding()
	binding.BindMapping("DBLP.CoAuthor", s.D.DBLP.CoAuthor)
	binding.BindMapping("DBLP.AuthorAuthor", mapping.Identity(s.D.DBLP.Authors))
	binding.BindSet("DBLP.Author", s.D.DBLP.Authors)

	src := `
$CoAuthSim = nhMatch (DBLP.CoAuthor, DBLP.AuthorAuthor, DBLP.CoAuthor)
$NameSim = attrMatch (DBLP.Author, DBLP.Author, Trigram, 0.5, "[name]", "[name]")
$Merged = merge ($CoAuthSim, $NameSim, Average)
$Result = select ($Merged, "[domain.id]<>[range.id]")
RETURN $Result
`
	ip := script.New(binding)
	v, err := ip.RunSource(src)
	if err != nil {
		return nil, nil, err
	}
	result := v.Mapping
	coAuthSimVal, _ := ip.Global("CoAuthSim")
	nameSimVal, _ := ip.Global("NameSim")

	// Rank merged candidates that have BOTH kinds of evidence (the paper's
	// table reports co-author overlap and name similarity together).
	type scored struct {
		c   mapping.Correspondence
		key [2]model.ID
	}
	seen := make(map[[2]model.ID]bool)
	var ranked []scored
	result.Each(func(c mapping.Correspondence) {
		if _, hasCo := coAuthSimVal.Mapping.Sim(c.Domain, c.Range); !hasCo {
			return
		}
		if _, hasName := nameSimVal.Mapping.Sim(c.Domain, c.Range); !hasName {
			return
		}
		key := [2]model.ID{c.Domain, c.Range}
		if c.Range < c.Domain {
			key = [2]model.ID{c.Range, c.Domain}
		}
		if seen[key] {
			return
		}
		seen[key] = true
		ranked = append(ranked, scored{c: c, key: key})
	})
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].c.Sim != ranked[j].c.Sim {
			return ranked[i].c.Sim > ranked[j].c.Sim
		}
		return ranked[i].key[0] < ranked[j].key[0]
	})
	if len(ranked) > k {
		ranked = ranked[:k]
	}
	var out []DuplicateCandidate
	for _, r := range ranked {
		co, _ := coAuthSimVal.Mapping.Sim(r.c.Domain, r.c.Range)
		name, _ := nameSimVal.Mapping.Sim(r.c.Domain, r.c.Range)
		paths := mapping.NumPaths(s.D.DBLP.CoAuthor, s.D.DBLP.CoAuthor, r.c.Domain, r.c.Range)
		out = append(out, DuplicateCandidate{
			A: r.c.Domain, B: r.c.Range,
			NameA:         s.D.DBLP.Authors.Get(r.c.Domain).Attr("name"),
			NameB:         s.D.DBLP.Authors.Get(r.c.Range).Attr("name"),
			CoAuthorSim:   co,
			SharedCoAuths: paths,
			NameSim:       name,
			MergedSim:     r.c.Sim,
			TrueDuplicate: s.D.Perfect.AuthorDupsDBLP.Has(r.c.Domain, r.c.Range),
		})
	}
	return result, out, nil
}

// Table10 summarizes the best achieved F-measures per match task, like the
// paper's closing summary table.
func Table10(s *Setting) (*TableResult, error) {
	t2, err := Table2(s)
	if err != nil {
		return nil, err
	}
	t4, err := Table4(s)
	if err != nil {
		return nil, err
	}
	t5, err := Table5(s)
	if err != nil {
		return nil, err
	}
	t6, err := Table6(s)
	if err != nil {
		return nil, err
	}
	t7, err := Table7(s)
	if err != nil {
		return nil, err
	}
	t8, err := Table8(s)
	if err != nil {
		return nil, err
	}
	t := &TableResult{
		ID:      "Table 10",
		Title:   "Summary of matching results (F-Measure)",
		Columns: []string{"Pair", "Venues", "Publications", "Authors"},
		Metrics: map[string]eval.Result{
			"venues":           t4.Metrics["overall/Best-1"],
			"pubs DBLP-ACM":    t5.Metrics["overall/Merge"],
			"pubs DBLP-GS":     t7.Metrics["Merge"],
			"pubs GS-ACM":      t8.Metrics["Merge"],
			"authors DBLP-ACM": t6.Metrics["Merge"],
			"pubs table2":      t2.Metrics["Merge"],
		},
	}
	t.Rows = append(t.Rows,
		[]string{"DBLP - ACM",
			eval.Pct(t4.Metrics["overall/Best-1"].F1),
			eval.Pct(t5.Metrics["overall/Merge"].F1),
			eval.Pct(t6.Metrics["Merge"].F1)},
		[]string{"DBLP - GS", "-", eval.Pct(t7.Metrics["Merge"].F1), "-"},
		[]string{"GS - ACM", "-", eval.Pct(t8.Metrics["Merge"].F1), "-"},
	)
	return t, nil
}

// preferPerRange merges with PreferMap semantics grouped by RANGE objects:
// all correspondences of preferred survive, and other contributes only for
// range objects preferred does not cover.
func preferPerRange(preferred, other *mapping.Mapping) (*mapping.Mapping, error) {
	inv, err := mapping.Merge(mapping.PreferCombiner(0), preferred.Inverse(), other.Inverse())
	if err != nil {
		return nil, err
	}
	return inv.Inverse(), nil
}

// Table7Parts exposes the Table 7 ingredients for calibration tooling.
func Table7Parts(s *Setting) (title, nh, perfect *mapping.Mapping, err error) {
	title, err = s.DBLPGSTitle()
	if err != nil {
		return nil, nil, nil, err
	}
	nh, err = s.nhPubViaAuthors()
	if err != nil {
		return nil, nil, nil, err
	}
	return title, nh, s.perfectDBLPGSWorking(), nil
}
