package experiments

import (
	"fmt"

	"repro/internal/eval"
	"repro/internal/mapping"
	"repro/internal/match"
	"repro/internal/model"
)

// The figures with worked numeric examples (4, 6, 9) are reproduced
// exactly: the functions below rebuild the paper's inputs, run the
// operator, and render the outputs. Unit tests in the mapping and match
// packages additionally lock every value in; these renderings let
// cmd/moma-bench print the figures next to the tables.

// Figure4 renders the merge-operator example for all four combination
// functions.
func Figure4() (*TableResult, error) {
	dblp := model.LDS{Source: "A", Type: model.Publication}
	acm := model.LDS{Source: "B", Type: model.Publication}
	map1 := mapping.NewSame(dblp, acm)
	map1.Add("a1", "b1", 1)
	map1.Add("a2", "b2", 0.8)
	map2 := mapping.NewSame(dblp, acm)
	map2.Add("a1", "b1", 0.6)
	map2.Add("a1", "b5", 1)
	map2.Add("a3", "b3", 0.9)

	t := &TableResult{
		ID:      "Figure 4",
		Title:   "Example execution of merge operator",
		Columns: []string{"f", "Result"},
		Metrics: map[string]eval.Result{},
	}
	for _, f := range []struct {
		label string
		comb  mapping.Combiner
	}{
		{"Min-0", mapping.Min0Combiner},
		{"Avg", mapping.AvgCombiner},
		{"Avg-0", mapping.Avg0Combiner},
		{"Prefer map1", mapping.PreferCombiner(0)},
	} {
		got, err := mapping.Merge(f.comb, map1, map2)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{f.label, renderCorrs(got)})
	}
	return t, nil
}

// Figure6 renders the compose-operator example with f=Min and g=Relative.
func Figure6() (*TableResult, error) {
	map1 := mapping.New(model.LDS{Source: "DBLP", Type: model.Venue},
		model.LDS{Source: "ACM", Type: model.Publication}, "VenuePub")
	map1.Add("v1", "p1", 1)
	map1.Add("v1", "p2", 1)
	map1.Add("v1", "p3", 0.6)
	map1.Add("v2", "p2", 0.6)
	map1.Add("v2", "p3", 1)
	map2 := mapping.New(model.LDS{Source: "ACM", Type: model.Publication},
		model.LDS{Source: "ACM", Type: model.Venue}, "PubVenue")
	map2.Add("p1", "v'1", 1)
	map2.Add("p2", "v'1", 1)
	map2.Add("p3", "v'2", 1)

	got, err := mapping.Compose(map1, map2, mapping.MinCombiner, mapping.AggRelative)
	if err != nil {
		return nil, err
	}
	t := &TableResult{
		ID:      "Figure 6",
		Title:   "Example execution of compose operator (f=Min, g=Relative)",
		Columns: []string{"Domain", "Range", "Sim"},
		Metrics: map[string]eval.Result{},
	}
	for _, c := range got.Sorted() {
		t.Rows = append(t.Rows, []string{string(c.Domain), string(c.Range), fmt.Sprintf("%.3f", c.Sim)})
	}
	return t, nil
}

// Figure9 renders the full neighborhood-matcher execution for the DBLP
// venues of the paper's running example.
func Figure9() (*TableResult, error) {
	asso1 := mapping.New(model.LDS{Source: "DBLP", Type: model.Venue},
		model.LDS{Source: "DBLP", Type: model.Publication}, "VenuePub")
	asso1.Add("conf/VLDB/2001", "conf/VLDB/MadhavanBR01", 1)
	asso1.Add("conf/VLDB/2001", "conf/VLDB/ChirkovaHS01", 1)
	asso1.Add("journals/VLDB/2002", "journals/VLDB/ChirkovaHS02", 1)

	same := mapping.NewSame(model.LDS{Source: "DBLP", Type: model.Publication},
		model.LDS{Source: "ACM", Type: model.Publication})
	same.Add("conf/VLDB/MadhavanBR01", "P-672191", 1)
	same.Add("conf/VLDB/ChirkovaHS01", "P-672216", 1)
	same.Add("conf/VLDB/ChirkovaHS01", "P-641272", 0.6)
	same.Add("journals/VLDB/ChirkovaHS02", "P-641272", 1)
	same.Add("journals/VLDB/ChirkovaHS02", "P-672216", 0.6)

	asso2 := mapping.New(model.LDS{Source: "ACM", Type: model.Publication},
		model.LDS{Source: "ACM", Type: model.Venue}, "PubVenue")
	asso2.Add("P-672191", "V-645927", 1)
	asso2.Add("P-672216", "V-645927", 1)
	asso2.Add("P-641272", "V-641268", 1)

	got, err := match.NhMatch(asso1, same, asso2)
	if err != nil {
		return nil, err
	}
	t := &TableResult{
		ID:      "Figure 9",
		Title:   "Sample execution of neighborhood matcher for DBLP venues",
		Columns: []string{"Venue@DBLP", "Venue@ACM", "Sim"},
		Metrics: map[string]eval.Result{},
	}
	for _, c := range got.Sorted() {
		t.Rows = append(t.Rows, []string{string(c.Domain), string(c.Range), fmt.Sprintf("%.3f", c.Sim)})
	}
	return t, nil
}

// Figure8Hub evaluates the hub infrastructure of Figure 8 on the generated
// dataset: instead of matching GS and ACM directly, both connect to the
// hub DBLP and the GS-ACM mapping is derived by composing via the hub. The
// result compares the direct (existing links) approach with the hub
// composition — the paper's argument for routing mappings through a
// high-quality curated source.
func Figure8Hub(s *Setting) (*TableResult, error) {
	dblpGS, err := s.DBLPGSTitle()
	if err != nil {
		return nil, err
	}
	dblpACM, err := s.PubSameTitleDBLPACM()
	if err != nil {
		return nil, err
	}
	direct, err := s.GSACMDirect()
	if err != nil {
		return nil, err
	}
	viaHub, err := mapping.Compose(dblpGS.Inverse(), dblpACM, mapping.MinCombiner, mapping.AggMax)
	if err != nil {
		return nil, err
	}
	perfect := s.perfectGSACMWorking()
	metrics := map[string]eval.Result{
		"direct links": eval.Compare(direct, perfect),
		"via hub DBLP": eval.Compare(viaHub, perfect),
	}
	t := &TableResult{
		ID:      "Figure 8",
		Title:   "Hub infrastructure: GS-ACM directly vs composed via the DBLP hub",
		Columns: []string{"Strategy", "Precision", "Recall", "F-Measure"},
		Metrics: metrics,
	}
	for _, k := range []string{"direct links", "via hub DBLP"} {
		r := metrics[k]
		t.Rows = append(t.Rows, []string{k, eval.Pct(r.Precision), eval.Pct(r.Recall), eval.Pct(r.F1)})
	}
	return t, nil
}

// renderCorrs formats a small mapping compactly: (a1,b1,0.60) ...
func renderCorrs(m *mapping.Mapping) string {
	out := ""
	for i, c := range m.Sorted() {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("(%s,%s,%.2f)", c.Domain, c.Range, c.Sim)
	}
	if out == "" {
		out = "(empty)"
	}
	return out
}
