package experiments

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/eval"
	"repro/internal/mapping"
	"repro/internal/match"
	"repro/internal/sim"
)

// Ablations for the design choices DESIGN.md calls out. They are not paper
// tables but quantify the decisions the paper discusses qualitatively.

// AblationMergeMissing compares the treatments of missing correspondences
// in the Table 2 merge (§3.1: ignore vs assume-zero vs weighted).
func AblationMergeMissing(s *Setting) (*TableResult, error) {
	title, err := s.PubSameTitleDBLPACM()
	if err != nil {
		return nil, err
	}
	author, err := s.authorMatcherDBLPACM().Match(s.D.DBLP.Pubs, s.D.ACM.Pubs)
	if err != nil {
		return nil, err
	}
	year, err := s.yearMatcherDBLPACM().Match(s.D.DBLP.Pubs, s.D.ACM.Pubs)
	if err != nil {
		return nil, err
	}
	perfect := s.D.Perfect.PubDBLPACM
	variants := []struct {
		label string
		comb  mapping.Combiner
		thr   float64
	}{
		{"Avg (ignore missing)", mapping.AvgCombiner, 0.8},
		{"Avg-0 (missing=0)", mapping.Avg0Combiner, 0.55},
		{"Min-0 (intersection)", mapping.Min0Combiner, 0.5},
		{"Weighted-0 3:1:1", mapping.Combiner{Kind: mapping.Weighted, Weights: []float64{3, 1, 1}, MissingAsZero: true}, 0.8},
	}
	t := &TableResult{
		ID:      "Ablation A1",
		Title:   "Merge missing-value handling (Table 2 inputs)",
		Columns: []string{"Variant", "Precision", "Recall", "F-Measure"},
		Metrics: map[string]eval.Result{},
	}
	for _, v := range variants {
		merged, err := mapping.Merge(v.comb, title, author, year)
		if err != nil {
			return nil, err
		}
		r := eval.Compare(mapping.Threshold{T: v.thr}.Apply(merged), perfect)
		t.Metrics[v.label] = r
		t.Rows = append(t.Rows, []string{v.label, eval.Pct(r.Precision), eval.Pct(r.Recall), eval.Pct(r.F1)})
	}
	return t, nil
}

// AblationComposeAgg compares the path-aggregation functions of the
// author-based neighborhood matcher on dirty GS data (§5.4.3 motivates
// RelativeLeft over the symmetric Relative when the right association is
// incomplete).
func AblationComposeAgg(s *Setting) (*TableResult, error) {
	authorSame, err := s.gsAuthorSame()
	if err != nil {
		return nil, err
	}
	perfect := s.perfectDBLPGSWorking()
	t := &TableResult{
		ID:      "Ablation A2",
		Title:   "Neighborhood path aggregation on incomplete GS author lists",
		Columns: []string{"g", "Precision", "Recall", "F-Measure"},
		Metrics: map[string]eval.Result{},
	}
	for _, g := range []mapping.PathAgg{mapping.AggRelative, mapping.AggRelativeLeft, mapping.AggRelativeRight, mapping.AggMax} {
		nh, err := match.NhMatchAgg(s.D.DBLP.PubAuthor, authorSame, s.D.GS.AuthorPub, g)
		if err != nil {
			return nil, err
		}
		nh = nh.Filter(func(c mapping.Correspondence) bool { return s.GSWork.Has(c.Range) })
		nh = mapping.Threshold{T: 0.75}.Apply(nh)
		r := eval.Compare(nh, perfect)
		t.Metrics[g.String()] = r
		t.Rows = append(t.Rows, []string{g.String(), eval.Pct(r.Precision), eval.Pct(r.Recall), eval.Pct(r.F1)})
	}
	return t, nil
}

// AblationBlocking compares candidate-generation strategies for the
// DBLP-ACM title matcher: pair counts, reduction ratio, completeness and
// resulting match quality.
func AblationBlocking(s *Setting) (*TableResult, error) {
	perfect := s.D.Perfect.PubDBLPACM
	var truth []block.Pair
	perfect.Each(func(c mapping.Correspondence) {
		truth = append(truth, block.Pair{A: c.Domain, B: c.Range})
	})
	blockers := []block.Blocker{
		block.TokenBlocking{AttrA: "title", AttrB: "name", MinShared: 2},
		block.TokenBlocking{AttrA: "title", AttrB: "name", MinShared: 3},
		block.SortedNeighborhood{AttrA: "title", AttrB: "name", Window: 10},
	}
	// The full cross product is included only at small scale; at paper
	// scale it is the quadratic baseline the others avoid.
	if s.D.DBLP.Pubs.Len() <= 500 {
		blockers = append([]block.Blocker{block.CrossProduct{}}, blockers...)
	}
	t := &TableResult{
		ID:      "Ablation A3",
		Title:   "Blocking strategies for the DBLP-ACM title matcher",
		Columns: []string{"Blocker", "Pairs", "Reduction", "Completeness", "F-Measure"},
		Metrics: map[string]eval.Result{},
	}
	for _, b := range blockers {
		pairs := b.Pairs(s.D.DBLP.Pubs, s.D.ACM.Pubs)
		m := &match.Attribute{
			AttrA: "title", AttrB: "name", Sim: sim.Trigram, Threshold: titleThreshold, Blocker: b,
		}
		got, err := m.Match(s.D.DBLP.Pubs, s.D.ACM.Pubs)
		if err != nil {
			return nil, err
		}
		r := eval.Compare(got, perfect)
		t.Metrics[b.String()] = r
		t.Rows = append(t.Rows, []string{
			b.String(),
			fmt.Sprint(len(pairs)),
			fmt.Sprintf("%.3f", block.ReductionRatio(pairs, s.D.DBLP.Pubs, s.D.ACM.Pubs)),
			fmt.Sprintf("%.3f", block.PairCompleteness(pairs, truth)),
			eval.Pct(r.F1),
		})
	}
	return t, nil
}

// AblationHubChoice quantifies Figure 8's hub argument: composing GS-ACM
// via the curated DBLP hub versus composing DBLP-ACM via the dirty GS
// source.
func AblationHubChoice(s *Setting) (*TableResult, error) {
	t3, err := Table3(s)
	if err != nil {
		return nil, err
	}
	t := &TableResult{
		ID:      "Ablation A4",
		Title:   "Hub choice for compose paths",
		Columns: []string{"Path", "F-Measure", "Assessment"},
		Metrics: map[string]eval.Result{
			"via clean hub (DBLP)": t3.Metrics["GS-ACM compose"],
			"via dirty hub (GS)":   t3.Metrics["DBLP-ACM compose"],
		},
	}
	clean := t3.Metrics["GS-ACM compose"]
	dirty := t3.Metrics["DBLP-ACM compose"]
	assess := func(f float64) string {
		if f >= 0.8 {
			return "good"
		}
		if f >= 0.5 {
			return "degraded"
		}
		return "poor"
	}
	t.Rows = append(t.Rows,
		[]string{"GS-ACM via DBLP (clean hub)", eval.Pct(clean.F1), assess(clean.F1)},
		[]string{"DBLP-ACM via GS (dirty hub)", eval.Pct(dirty.F1), assess(dirty.F1)},
	)
	return t, nil
}
