package experiments

import (
	"strings"
	"sync"
	"testing"
)

// The experiment tests run at small scale and assert the qualitative
// shapes the paper reports: which matcher wins, where merge helps, where
// compose paths fail. Absolute values are asserted only loosely; the full
// paper-vs-measured comparison lives in EXPERIMENTS.md at paper scale.

var (
	settingOnce sync.Once
	shared      *Setting
)

func testSetting(t *testing.T) *Setting {
	t.Helper()
	settingOnce.Do(func() { shared = NewSmallSetting() })
	return shared
}

func TestTable1Counts(t *testing.T) {
	s := testSetting(t)
	r, err := Table1(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Rows[0][0] != "DBLP" || r.Rows[2][0] != "Google Scholar" {
		t.Errorf("row labels = %v", r.Rows)
	}
	// DBLP is complete; ACM misses publications; GS is the largest.
	if !(s.D.ACM.Pubs.Len() < s.D.DBLP.Pubs.Len() && s.D.DBLP.Pubs.Len() < s.D.GS.Pubs.Len()) {
		t.Error("source size ordering wrong")
	}
	if !strings.Contains(r.Render(), "Table 1") {
		t.Error("render missing title")
	}
}

func TestTable2Shape(t *testing.T) {
	s := testSetting(t)
	r, err := Table2(s)
	if err != nil {
		t.Fatal(err)
	}
	title := r.Metrics["Title"]
	author := r.Metrics["Author"]
	year := r.Metrics["Year"]
	merge := r.Metrics["Merge"]

	// The paper's ordering: title is the best individual matcher, year is
	// useless on precision but perfect on recall, merge beats title.
	if !(title.F1 > author.F1 && author.F1 > year.F1) {
		t.Errorf("matcher ordering wrong: title=%v author=%v year=%v", title.F1, author.F1, year.F1)
	}
	if year.Recall != 1 {
		t.Errorf("year recall = %v, want 1 (all true pairs share the year)", year.Recall)
	}
	if year.Precision > 0.1 {
		t.Errorf("year precision = %v, should be near zero", year.Precision)
	}
	if merge.F1 <= title.F1 {
		t.Errorf("merge (%v) must beat title (%v)", merge.F1, title.F1)
	}
	if merge.Precision <= title.Precision {
		t.Errorf("merge precision (%v) must beat title precision (%v)", merge.Precision, title.Precision)
	}
	if title.F1 < 0.85 {
		t.Errorf("title F = %v, want a strong baseline like the paper's 91.9%%", title.F1)
	}
}

func TestTable3Shape(t *testing.T) {
	s := testSetting(t)
	r, err := Table3(s)
	if err != nil {
		t.Fatal(err)
	}
	// The existing GS-ACM links have high precision but very poor recall.
	direct := r.Metrics["GS-ACM direct"]
	if direct.Precision < 0.95 {
		t.Errorf("existing links precision = %v, want ~1", direct.Precision)
	}
	if direct.Recall > 0.35 {
		t.Errorf("existing links recall = %v, want ~0.22", direct.Recall)
	}
	// Composing via the clean DBLP hub beats the poor direct links.
	if r.Metrics["GS-ACM compose"].F1 <= direct.F1 {
		t.Error("compose via DBLP hub must beat the existing links")
	}
	// Composing via the dirty GS hub is much worse than direct matching.
	if r.Metrics["DBLP-ACM compose"].F1 >= r.Metrics["DBLP-ACM direct"].F1 {
		t.Error("compose via GS must be worse than direct DBLP-ACM matching")
	}
	// Merging retains (approximately) the best alternative for each pair.
	for _, pair := range []string{"DBLP-GS", "DBLP-ACM", "GS-ACM"} {
		best := r.Metrics[pair+" direct"].F1
		if c := r.Metrics[pair+" compose"].F1; c > best {
			best = c
		}
		if m := r.Metrics[pair+" merge"].F1; m < best-0.03 {
			t.Errorf("%s merge F=%v should retain the best alternative %v", pair, m, best)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	s := testSetting(t)
	r, err := Table4(s)
	if err != nil {
		t.Fatal(err)
	}
	// Neighborhood matching solves the venue problem that attribute
	// matching cannot touch: overall F must be very high.
	if f := r.Metrics["overall/50%"].F1; f < 0.9 {
		t.Errorf("overall F at 50%% = %v, want >= 0.9 (paper: 99.1%%)", f)
	}
	// Conferences match perfectly under the strict threshold (large,
	// well-matched neighborhoods).
	if f := r.Metrics["conference/80%"].F1; f != 1 {
		t.Errorf("conference F at 80%% = %v, want 1", f)
	}
	// Best-1 hurts conference precision: the ACM-missing VLDB years force
	// a wrong best match (the paper's VLDB 2002/2003 effect).
	if r.Metrics["conference/Best-1"].Precision >= 1 {
		t.Error("Best-1 should cost conference precision due to missing ACM years")
	}
	// Journals never beat conferences under the strict threshold (smaller
	// neighborhoods), and a stricter threshold cannot raise journal recall.
	if r.Metrics["journal/80%"].Recall > r.Metrics["journal/50%"].Recall {
		t.Error("stricter threshold cannot raise journal recall")
	}
}

func TestTable5Shape(t *testing.T) {
	s := testSetting(t)
	r, err := Table5(s)
	if err != nil {
		t.Fatal(err)
	}
	attr := r.Metrics["overall/Attribute (Title)"]
	nh := r.Metrics["overall/Neighborhood (Venue)"]
	merge := r.Metrics["overall/Merge"]
	// The venue neighborhood alone confines candidates: perfect recall,
	// terrible precision (paper: R 100%, P 2%).
	if nh.Recall < 0.99 {
		t.Errorf("venue-neighborhood recall = %v, want ~1", nh.Recall)
	}
	if nh.Precision > 0.5 {
		t.Errorf("venue-neighborhood precision = %v, should be low", nh.Precision)
	}
	// Combination beats the attribute matcher decisively (paper: 91.9 ->
	// 98.6).
	if merge.F1 <= attr.F1 {
		t.Errorf("merge (%v) must beat title (%v)", merge.F1, attr.F1)
	}
	if merge.Precision < 0.97 {
		t.Errorf("merge precision = %v, want near-perfect", merge.Precision)
	}
	// The journal improvement is the paper's headline: recurring newsletter
	// titles are disambiguated by the venue evidence.
	if r.Metrics["journal/Merge"].Precision <= r.Metrics["journal/Attribute (Title)"].Precision {
		t.Error("venue evidence should fix journal title collisions")
	}
}

func TestTable6Shape(t *testing.T) {
	s := testSetting(t)
	r, err := Table6(s)
	if err != nil {
		t.Fatal(err)
	}
	attr := r.Metrics["Attribute (Name)"]
	nh := r.Metrics["Neighborhood (Publication)"]
	merge := r.Metrics["Merge"]
	// Neighborhood alone: poor precision, good recall (paper: P 24.8 / R
	// 99.3).
	if nh.Precision > 0.5 || nh.Recall < 0.8 {
		t.Errorf("nh alone = %+v, want low precision / high recall", nh)
	}
	// Attribute matching is already reasonable (paper: F 89.4).
	if attr.F1 < 0.85 {
		t.Errorf("attr F = %v", attr.F1)
	}
	// Combination improves overall quality and recall (name variants
	// recovered via shared publications).
	if merge.F1 <= attr.F1 {
		t.Errorf("merge (%v) must beat attribute (%v)", merge.F1, attr.F1)
	}
	if merge.Recall <= attr.Recall {
		t.Errorf("merge recall (%v) must beat attribute recall (%v)", merge.Recall, attr.Recall)
	}
}

func TestTable7Shape(t *testing.T) {
	s := testSetting(t)
	r, err := Table7(s)
	if err != nil {
		t.Fatal(err)
	}
	title := r.Metrics["Attribute (Title)"]
	nh := r.Metrics["Neighborhood (Author)"]
	merge := r.Metrics["Merge"]
	if nh.F1 >= title.F1 {
		t.Errorf("nh alone (%v) should be below title (%v)", nh.F1, title.F1)
	}
	if merge.F1 <= title.F1 {
		t.Errorf("merge (%v) must beat title (%v) — the paper's 81->89 lift", merge.F1, title.F1)
	}
	// GS matching stays clearly below the clean DBLP-ACM task.
	if merge.F1 > 0.95 {
		t.Errorf("DBLP-GS merge F = %v suspiciously high for dirty GS", merge.F1)
	}
}

func TestTable8Shape(t *testing.T) {
	s := testSetting(t)
	r, err := Table8(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["Merge"].F1 <= r.Metrics["Attribute (Title)"].F1 {
		t.Error("merge must beat title for GS-ACM too")
	}
}

func TestTable9Dedup(t *testing.T) {
	s := testSetting(t)
	r, err := Table9(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no duplicate candidates")
	}
	// The top candidates must be true duplicates; further down the list,
	// hard cases like the paper's "Catalina Fan / Catalina Wei" pair —
	// same co-authors, similar names, genuinely undecidable — may appear.
	for i := 0; i < 2 && i < len(r.Rows); i++ {
		if r.Rows[i][len(r.Rows[i])-1] != "true" {
			t.Errorf("top candidate %d is not a true duplicate: %v", i+1, r.Rows[i])
		}
	}
	trueCount := 0
	for _, row := range r.Rows {
		if row[len(row)-1] == "true" {
			trueCount++
		}
	}
	if trueCount < 2 {
		t.Errorf("only %d/%d top candidates are true duplicates", trueCount, len(r.Rows))
	}
}

func TestTable10Summary(t *testing.T) {
	s := testSetting(t)
	r, err := Table10(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// DBLP-ACM tasks all end up strong; GS tasks stay visibly lower — the
	// paper's closing observation.
	if r.Metrics["venues"].F1 < 0.9 || r.Metrics["pubs DBLP-ACM"].F1 < 0.9 || r.Metrics["authors DBLP-ACM"].F1 < 0.9 {
		t.Errorf("DBLP-ACM results should all exceed 0.9: %+v", r.Metrics)
	}
	if r.Metrics["pubs DBLP-GS"].F1 >= r.Metrics["pubs DBLP-ACM"].F1 {
		t.Error("GS matching must stay below DBLP-ACM matching")
	}
}

func TestAblationMergeMissingShape(t *testing.T) {
	s := testSetting(t)
	r, err := AblationMergeMissing(s)
	if err != nil {
		t.Fatal(err)
	}
	// Ignoring missing values floods the merge with year-only pairs.
	if r.Metrics["Avg (ignore missing)"].Precision > 0.1 {
		t.Error("Avg-ignore should have terrible precision here")
	}
	// Intersection has the highest precision of the variants.
	minP := r.Metrics["Min-0 (intersection)"].Precision
	for k, m := range r.Metrics {
		if k != "Min-0 (intersection)" && m.Precision > minP+1e-9 {
			t.Errorf("%s precision %v exceeds intersection %v", k, m.Precision, minP)
		}
	}
}

func TestAblationComposeAggShape(t *testing.T) {
	s := testSetting(t)
	r, err := AblationComposeAgg(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Max over paths is the most permissive: highest recall, worst
	// precision.
	maxRes := r.Metrics["Max"]
	for k, m := range r.Metrics {
		if k == "Max" {
			continue
		}
		if m.Recall > maxRes.Recall+1e-9 {
			t.Errorf("%s recall %v exceeds Max %v", k, m.Recall, maxRes.Recall)
		}
	}
}

func TestAblationBlockingShape(t *testing.T) {
	s := testSetting(t)
	r, err := AblationBlocking(s)
	if err != nil {
		t.Fatal(err)
	}
	// Token blocking with two shared tokens keeps full completeness at a
	// large reduction, matching the cross product's quality.
	var crossF, tokenF string
	for _, row := range r.Rows {
		if strings.HasPrefix(row[0], "cross-product") {
			crossF = row[4]
		}
		if strings.HasPrefix(row[0], "token-blocking") && strings.Contains(row[0], ">=2") {
			tokenF = row[4]
			if row[3] != "1.000" {
				t.Errorf("token blocking completeness = %s, want 1.000", row[3])
			}
		}
	}
	if crossF != "" && crossF != tokenF {
		t.Errorf("token blocking F %s differs from cross product %s", tokenF, crossF)
	}
}

func TestAblationHubChoiceShape(t *testing.T) {
	s := testSetting(t)
	r, err := AblationHubChoice(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["via clean hub (DBLP)"].F1 <= r.Metrics["via dirty hub (GS)"].F1 {
		t.Error("the clean hub must beat the dirty hub")
	}
}

func TestFigureRenderings(t *testing.T) {
	f4, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(f4.Rows) != 4 {
		t.Errorf("Figure 4 rows = %d", len(f4.Rows))
	}
	if !strings.Contains(f4.Render(), "(a1,b1,0.60)") {
		t.Errorf("Figure 4 Min-0 row wrong:\n%s", f4.Render())
	}
	f6, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(f6.Rows) != 4 {
		t.Errorf("Figure 6 rows = %d", len(f6.Rows))
	}
	if !strings.Contains(f6.Render(), "0.800") {
		t.Errorf("Figure 6 missing the 0.8 correspondence:\n%s", f6.Render())
	}
	f9, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	out := f9.Render()
	for _, frag := range []string{"conf/VLDB/2001", "V-645927", "0.800", "0.667"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Figure 9 missing %q:\n%s", frag, out)
		}
	}
}

func TestFigure8HubShape(t *testing.T) {
	s := testSetting(t)
	r, err := Figure8Hub(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["via hub DBLP"].F1 <= r.Metrics["direct links"].F1 {
		t.Error("hub composition must beat the direct links")
	}
	if r.Metrics["direct links"].Precision < 0.95 {
		t.Error("direct links should be precise")
	}
}

func TestExtensionGSSelfMapping(t *testing.T) {
	s := testSetting(t)
	r, err := ExtensionGSSelfMapping(s)
	if err != nil {
		t.Fatal(err)
	}
	base := r.Metrics["Title only"]
	ext := r.Metrics["With self-mapping"]
	// Composing the GS self-mapping must raise recall (more duplicate
	// entries reached) without destroying precision.
	if ext.Recall < base.Recall {
		t.Errorf("self-mapping composition lowered recall: %v -> %v", base.Recall, ext.Recall)
	}
	if ext.Recall == base.Recall {
		t.Log("no recall gain at this scale (acceptable, checked at paper scale)")
	}
	if ext.Precision < base.Precision-0.1 {
		t.Errorf("self-mapping composition cost too much precision: %v -> %v", base.Precision, ext.Precision)
	}
}

func TestExtensionSelfTuning(t *testing.T) {
	s := testSetting(t)
	r, err := ExtensionSelfTuning(s)
	if err != nil {
		t.Fatal(err)
	}
	best := r.Metrics["Grid best"]
	// The grid must discover a sensible configuration: title trigram at a
	// reasonable threshold, with a strong F on the training data.
	if best.F1 < 0.8 {
		t.Errorf("grid best F = %v, want >= 0.8", best.F1)
	}
	if !strings.Contains(r.Rows[0][1], "title") {
		t.Errorf("grid should select a title configuration, got %q", r.Rows[0][1])
	}
	tree := r.Metrics["Decision tree"]
	if tree.F1 < 0.8 {
		t.Errorf("decision tree F = %v, want >= 0.8", tree.F1)
	}
}
