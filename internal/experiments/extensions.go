package experiments

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/cluster"
	"repro/internal/eval"
	"repro/internal/mapping"
	"repro/internal/match"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/tuning"
)

// Extensions implement what the paper announces as future work:
//
//   - E1 (§5.6): determine the duplicates WITHIN Google Scholar first,
//     represent them as a self-mapping, and compose it with cross-source
//     same-mappings "to find more correspondences".
//   - E2 (§2.2/§7): self-tuning — automatically choosing attributes,
//     similarity functions and thresholds from training data, including a
//     decision-tree match classifier.

// ExtensionGSSelfMapping implements the §5.6 outlook: duplicate GS entries
// are clustered into a transitively-closed self-mapping, which is then
// composed with the DBLP-GS title mapping so that every entry of a matched
// cluster is reached — lifting recall under the strict all-duplicates
// evaluation.
func ExtensionGSSelfMapping(s *Setting) (*TableResult, error) {
	title, err := s.DBLPGSTitle()
	if err != nil {
		return nil, err
	}
	// Duplicate detection within GS: title and author-list evidence
	// combined, exactly the §4.3 recipe applied to a dirty web source.
	selfMatcher := &match.MultiAttribute{
		MatcherName: "gs-self",
		Pairs: []match.AttrPair{
			{AttrA: "title", AttrB: "title", Sim: sim.Trigram, Weight: 2},
			{AttrA: "authors", AttrB: "authors", Sim: sim.Trigram, Weight: 1},
		},
		Threshold: 0.82,
		Blocker:   block.TokenBlocking{AttrA: "title", AttrB: "title", MinShared: 3},
	}
	rawSelf, err := selfMatcher.Match(s.GSWork, s.GSWork)
	if err != nil {
		return nil, err
	}
	rawSelf = rawSelf.WithoutDiagonal()
	// Clusters of duplicate entries, closed under transitivity.
	selfMapping := cluster.TransitiveClosure(rawSelf, 0.82)

	// Compose: a DBLP publication matched to one entry of a cluster now
	// reaches every entry of that cluster.
	viaSelf, err := mapping.Compose(title, selfMapping, mapping.MinCombiner, mapping.AggMax)
	if err != nil {
		return nil, err
	}
	// "To find more correspondences" (§5.6): the composition contributes
	// only entries the title mapping left uncovered; covered entries keep
	// their direct evidence, so cluster errors cannot overwrite them.
	improved, err := preferPerRange(title, viaSelf)
	if err != nil {
		return nil, err
	}

	perfect := s.perfectDBLPGSWorking()
	metrics := map[string]eval.Result{
		"Title only":         eval.Compare(title, perfect),
		"With self-mapping":  eval.Compare(improved, perfect),
		"Self-mapping pairs": {},
	}
	clusters := cluster.FromMapping(rawSelf, 0.82)
	t := &TableResult{
		ID:      "Extension E1",
		Title:   "GS self-mapping composition (§5.6 future work)",
		Columns: []string{"Strategy", "Precision", "Recall", "F-Measure"},
		Metrics: metrics,
	}
	for _, k := range []string{"Title only", "With self-mapping"} {
		r := metrics[k]
		t.Rows = append(t.Rows, []string{k, eval.Pct(r.Precision), eval.Pct(r.Recall), eval.Pct(r.F1)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("GS dedup found %d duplicate clusters covering %d entries",
			len(clusters), countClusterMembers(clusters)))
	return t, nil
}

func countClusterMembers(cs []cluster.Cluster) int {
	n := 0
	for _, c := range cs {
		n += len(c)
	}
	return n
}

// ExtensionSelfTuning demonstrates the self-tuning loop of §2.2: grid
// search over attribute/similarity/threshold configurations against a
// labelled training sample, plus a CART decision tree over similarity
// feature vectors used as a matcher. Both run on a publication sample to
// keep the grid tractable.
func ExtensionSelfTuning(s *Setting) (*TableResult, error) {
	// Training sample ("suitable training data", §2.2): every kth DBLP
	// publication, its true ACM counterparts, and an equal helping of
	// distractor ACM publications. Sampling both sides independently would
	// leave almost no labelled pairs.
	kA := s.D.DBLP.Pubs.Len() / 120
	if kA < 2 {
		kA = 2
	}
	sampleA := sampleSet(s.D.DBLP.Pubs, kA)
	sampleB := model.NewObjectSet(s.D.ACM.Pubs.LDS())
	sampleA.Each(func(in *model.Instance) bool {
		for _, c := range s.D.Perfect.PubDBLPACM.ForDomain(in.ID) {
			if other := s.D.ACM.Pubs.Get(c.Range); other != nil {
				sampleB.Add(other)
			}
		}
		return true
	})
	distractors := sampleSet(s.D.ACM.Pubs, kA)
	distractors.Each(func(in *model.Instance) bool {
		sampleB.Add(in)
		return true
	})
	training := s.D.Perfect.PubDBLPACM.Filter(func(c mapping.Correspondence) bool {
		return sampleA.Has(c.Domain) && sampleB.Has(c.Range)
	})

	space := tuning.Space{
		AttrPairs:  [][2]string{{"title", "name"}, {"authors", "authors"}, {"year", "year"}},
		SimNames:   []string{"Trigram", "Levenshtein", "TokenJaccard"},
		Thresholds: []float64{0.6, 0.7, 0.8, 0.9},
	}
	outcomes, err := tuning.GridSearch(space, sampleA, sampleB, training)
	if err != nil {
		return nil, err
	}
	best, err := tuning.Best(outcomes)
	if err != nil {
		return nil, err
	}

	// Decision tree: features from three measures over blocked candidate
	// pairs, trained on the sample, applied to the sample.
	fe, err := tuning.NewFeatureExtractor(nil, [][3]string{
		{"title", "name", "Trigram"},
		{"authors", "authors", "Trigram"},
		{"year", "year", "YearExact"},
	})
	if err != nil {
		return nil, err
	}
	blocker := block.TokenBlocking{AttrA: "title", AttrB: "name", MinShared: 2}
	var pairs [][2]model.ID
	for _, p := range blocker.Pairs(sampleA, sampleB) {
		pairs = append(pairs, [2]model.ID{p.A, p.B})
	}
	examples := tuning.BuildExamples(fe, sampleA, sampleB, pairs, training)
	tree := tuning.LearnTree(examples, tuning.TreeConfig{MaxDepth: 5, MinExamples: 4})
	tm := &tuning.TreeMatcher{
		MatcherName: "tuned-tree",
		Extractor:   fe,
		Tree:        tree,
		Pairs: func(a, b *model.ObjectSet) [][2]model.ID {
			var out [][2]model.ID
			for _, p := range blocker.Pairs(a, b) {
				out = append(out, [2]model.ID{p.A, p.B})
			}
			return out
		},
	}
	treeResult, err := tm.Match(sampleA, sampleB)
	if err != nil {
		return nil, err
	}

	metrics := map[string]eval.Result{
		"Grid best":     best.Result,
		"Decision tree": eval.Compare(treeResult, training),
	}
	t := &TableResult{
		ID:      "Extension E2",
		Title:   "Self-tuning: grid search and decision tree (§2.2/§7)",
		Columns: []string{"Strategy", "Configuration", "Precision", "Recall", "F-Measure"},
		Metrics: metrics,
	}
	t.Rows = append(t.Rows, []string{
		"Grid best", best.Candidate.String(),
		eval.Pct(best.Result.Precision), eval.Pct(best.Result.Recall), eval.Pct(best.Result.F1),
	})
	for i, o := range outcomes {
		if i == 0 || i > 2 {
			continue
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("Grid #%d", i+1), o.Candidate.String(),
			eval.Pct(o.Result.Precision), eval.Pct(o.Result.Recall), eval.Pct(o.Result.F1),
		})
	}
	tr := metrics["Decision tree"]
	t.Rows = append(t.Rows, []string{
		"Decision tree", fmt.Sprintf("depth %d, %d examples", tree.Depth(), len(examples)),
		eval.Pct(tr.Precision), eval.Pct(tr.Recall), eval.Pct(tr.F1),
	})
	t.Notes = append(t.Notes, fmt.Sprintf("grid evaluated %d configurations on a 1/4 sample", len(outcomes)))
	return t, nil
}

// sampleSet keeps every kth instance of a set.
func sampleSet(set *model.ObjectSet, k int) *model.ObjectSet {
	out := model.NewObjectSet(set.LDS())
	i := 0
	set.Each(func(in *model.Instance) bool {
		if i%k == 0 {
			out.Add(in)
		}
		i++
		return true
	})
	return out
}
