package experiments

import (
	"repro/internal/block"
	"repro/internal/eval"
	"repro/internal/mapping"
	"repro/internal/match"
	"repro/internal/sim"
)

// Table4 reproduces "Matching DBLP-ACM venues using neighborhood matcher
// based on publication same-mapping (1:n)": the nhMatch procedure over
// venue-publication associations, evaluated under three selection
// strategies (50% and 80% thresholds, Best-1) with the paper's
// conference/journal breakdown.
func Table4(s *Setting) (*TableResult, error) {
	pubSame, err := s.PubSameTitleDBLPACM()
	if err != nil {
		return nil, err
	}
	nh, err := match.NhMatch(s.D.DBLP.VenuePub, pubSame, s.D.ACM.PubVenue)
	if err != nil {
		return nil, err
	}
	selections := []struct {
		label string
		sel   mapping.Selection
	}{
		{"50%", mapping.Threshold{T: 0.5}},
		{"80%", mapping.Threshold{T: 0.8}},
		{"Best-1", mapping.BestN{N: 1, Side: mapping.DomainSide}},
	}
	perfect := s.D.Perfect.VenueDBLPACM
	group := s.venueKindGroup()

	t := &TableResult{
		ID:      "Table 4",
		Title:   "Matching DBLP-ACM venues using neighborhood matcher (1:n)",
		Columns: []string{"Group", "Metric", "50%", "80%", "Best-1"},
		Metrics: map[string]eval.Result{},
	}
	grouped := make(map[string]map[string]eval.Result) // selection -> group -> result
	for _, sc := range selections {
		res := eval.CompareGrouped(sc.sel.Apply(nh), perfect, group)
		grouped[sc.label] = res
		for g, r := range res {
			t.Metrics[g+"/"+sc.label] = r
		}
	}
	for _, g := range []string{"conference", "journal", "overall"} {
		for _, metric := range []struct {
			name string
			get  func(eval.Result) float64
		}{
			{"Precision", func(r eval.Result) float64 { return r.Precision }},
			{"Recall", func(r eval.Result) float64 { return r.Recall }},
			{"F-Measure", func(r eval.Result) float64 { return r.F1 }},
		} {
			cells := []string{g, metric.name}
			for _, sc := range selections {
				cells = append(cells, eval.Pct(metric.get(grouped[sc.label][g])))
			}
			t.Rows = append(t.Rows, cells)
		}
	}
	return t, nil
}

// Table5 reproduces "Matching DBLP-ACM publications using neighborhood
// matcher based on venue same-mapping (n:1)": the venue mapping from Table
// 4 confines publication match candidates to corresponding venues; merging
// that evidence with the title matcher lifts precision dramatically,
// especially for journals with recurring column titles (§5.4.2).
func Table5(s *Setting) (*TableResult, error) {
	title, err := s.PubSameTitleDBLPACM()
	if err != nil {
		return nil, err
	}
	venueSame, err := s.VenueSameDBLPACM()
	if err != nil {
		return nil, err
	}
	// n:1 neighborhood: publications of corresponding venues.
	nh, err := match.NhMatch(s.D.DBLP.PubVenue, venueSame, s.D.ACM.VenuePub)
	if err != nil {
		return nil, err
	}
	// Merge: title evidence averaged with the venue-neighborhood evidence
	// under missing-as-zero; pairs lacking either kind of support drop
	// below the threshold.
	merged, err := mapping.Merge(mapping.Avg0Combiner, title, nh)
	if err != nil {
		return nil, err
	}
	merged = mapping.Threshold{T: 0.75}.Apply(merged)

	perfect := s.D.Perfect.PubDBLPACM
	group := s.pubKindGroup()
	strategies := []struct {
		label string
		m     *mapping.Mapping
	}{
		{"Attribute (Title)", title},
		{"Neighborhood (Venue)", nh},
		{"Merge", merged},
	}
	t := &TableResult{
		ID:      "Table 5",
		Title:   "Matching DBLP-ACM publications using neighborhood matcher based on venue same-mapping (n:1)",
		Columns: []string{"Group", "Metric", "Attribute (Title)", "Neighborhood (Venue)", "Merge"},
		Metrics: map[string]eval.Result{},
	}
	grouped := make(map[string]map[string]eval.Result)
	for _, st := range strategies {
		res := eval.CompareGrouped(st.m, perfect, group)
		grouped[st.label] = res
		for g, r := range res {
			t.Metrics[g+"/"+st.label] = r
		}
	}
	for _, g := range []string{"conference", "journal", "overall"} {
		for _, metric := range []struct {
			name string
			get  func(eval.Result) float64
		}{
			{"Precision", func(r eval.Result) float64 { return r.Precision }},
			{"Recall", func(r eval.Result) float64 { return r.Recall }},
			{"F-Measure", func(r eval.Result) float64 { return r.F1 }},
		} {
			cells := []string{g, metric.name}
			for _, st := range strategies {
				cells = append(cells, eval.Pct(metric.get(grouped[st.label][g])))
			}
			t.Rows = append(t.Rows, cells)
		}
	}
	return t, nil
}

// Table6 reproduces "Matching DBLP-ACM authors with the help of the
// neighborhood matcher based on publication same-mapping (n:m)". The
// attribute matcher uses name trigram at a high threshold; the
// neighborhood matcher scores authors by the overlap of their matched
// publications; the combination intersects a permissive name matcher with
// the neighborhood evidence (Figure 11's workflow) — refinding name
// variants the strict attribute matcher misses while the name requirement
// kills the frequent-co-author false positives.
func Table6(s *Setting) (*TableResult, error) {
	pubSame, err := s.PubSameMergedDBLPACM()
	if err != nil {
		return nil, err
	}
	attr := &match.Attribute{
		MatcherName: "Author name",
		AttrA:       "name", AttrB: "name",
		Sim:       sim.Trigram,
		Threshold: nameThreshold,
		Blocker:   blockAuthors(),
	}
	attrStrict, err := attr.Match(s.D.DBLP.Authors, s.D.ACM.Authors)
	if err != nil {
		return nil, err
	}
	nh, err := match.NhMatch(s.D.DBLP.AuthorPub, pubSame, s.D.ACM.PubAuthor)
	if err != nil {
		return nil, err
	}
	// Permissive name matcher for the combination (initial-aware).
	attrLow := &match.Attribute{
		MatcherName: "Author name (low)",
		AttrA:       "name", AttrB: "name",
		Sim:       sim.PersonName,
		Threshold: nameLowThreshold,
		Blocker:   blockAuthors(),
	}
	lowNames, err := attrLow.Match(s.D.DBLP.Authors, s.D.ACM.Authors)
	if err != nil {
		return nil, err
	}
	inner, err := mapping.Merge(mapping.Min0Combiner, lowNames, nh)
	if err != nil {
		return nil, err
	}
	inner = mapping.Threshold{T: 0.45}.Apply(inner)
	// Figure 11's merge: strict name evidence unioned with the
	// (permissive-name ∧ shared-publication) evidence.
	merged, err := mapping.Merge(mapping.MaxCombiner, attrStrict, inner)
	if err != nil {
		return nil, err
	}

	perfect := s.D.Perfect.AuthorDBLPACM
	metrics := map[string]eval.Result{
		"Attribute (Name)":           eval.Compare(attrStrict, perfect),
		"Neighborhood (Publication)": eval.Compare(nh, perfect),
		"Merge":                      eval.Compare(merged, perfect),
	}
	names := []string{"Attribute (Name)", "Neighborhood (Publication)", "Merge"}
	t := &TableResult{
		ID:      "Table 6",
		Title:   "Matching DBLP-ACM authors with the help of neighborhood matcher (n:m)",
		Columns: append([]string{"Metric"}, names...),
		Metrics: metrics,
	}
	addMetricRows(t, names, metrics)
	return t, nil
}

// blockAuthors blocks author-name comparisons on a shared name token
// (surname or given name), keeping the quadratic name comparison tractable
// at paper scale.
func blockAuthors() block.Blocker {
	return block.TokenBlocking{AttrA: "name", AttrB: "name", MinShared: 1}
}
