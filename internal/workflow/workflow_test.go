package workflow

import (
	"strings"
	"testing"

	"repro/internal/mapping"
	"repro/internal/match"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/store"
)

var (
	dblpPub = model.LDS{Source: "DBLP", Type: model.Publication}
	acmPub  = model.LDS{Source: "ACM", Type: model.Publication}
)

// fixtureSets returns the Figure 1 publication sets.
func fixtureSets() (*model.ObjectSet, *model.ObjectSet) {
	dblp := model.NewObjectSet(dblpPub)
	dblp.AddNew("d1", map[string]string{"title": "Generic Schema Matching with Cupid", "year": "2001"})
	dblp.AddNew("d2", map[string]string{"title": "A formal perspective on the view selection problem", "year": "2001"})
	dblp.AddNew("d3", map[string]string{"title": "A formal perspective on the view selection problem", "year": "2002"})
	acm := model.NewObjectSet(acmPub)
	acm.AddNew("a1", map[string]string{"name": "Generic Schema Matching with Cupid", "year": "2001"})
	acm.AddNew("a2", map[string]string{"name": "A formal perspective on the view selection problem", "year": "2001"})
	acm.AddNew("a3", map[string]string{"name": "A formal perspective on the view selection problem", "year": "2002"})
	return dblp, acm
}

func titleMatcher() match.Matcher {
	return &match.Attribute{MatcherName: "title", AttrA: "title", AttrB: "name", Sim: sim.Trigram, Threshold: 0.8}
}

func yearMatcher() match.Matcher {
	return &match.Attribute{MatcherName: "year", AttrA: "year", AttrB: "year", Sim: sim.YearExact, Threshold: 1}
}

func TestRunMergeWorkflow(t *testing.T) {
	// §4.1.1: independent matchers merged — title matching alone confuses
	// the conference/journal twins; merging with the year matcher under
	// Avg-0 and a high threshold resolves them.
	dblp, acm := fixtureSets()
	wf := New("pubs").AddStep(MergeStep("combine", mapping.Avg0Combiner,
		mapping.Threshold{T: 0.8}, titleMatcher(), yearMatcher()))

	e := NewEngine(store.NewRepository())
	got, err := e.Run(wf, dblp, acm)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range [][2]model.ID{{"d1", "a1"}, {"d2", "a2"}, {"d3", "a3"}} {
		if !got.Has(want[0], want[1]) {
			t.Errorf("missing %v", want)
		}
	}
	if got.Has("d2", "a3") || got.Has("d3", "a2") {
		t.Error("twin confusion should be resolved by the year matcher + threshold")
	}
}

func TestStepResultsCached(t *testing.T) {
	dblp, acm := fixtureSets()
	wf := New("pubs").AddStep(MergeStep("titles", mapping.AvgCombiner, nil, titleMatcher()))
	e := NewEngine(store.NewRepository())
	if _, err := e.Run(wf, dblp, acm); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Cache.Get("titles"); !ok {
		t.Error("step result should be cached under the step name")
	}
}

func TestUseCachedMappingInLaterStep(t *testing.T) {
	// Step 2 refines step 1's result by merging it with the year matcher
	// under Avg-0 (missing-as-zero, §3.1): pairs the year matcher does not
	// confirm are halved and fall below the threshold.
	dblp, acm := fixtureSets()
	wf := New("refine").
		AddStep(MergeStep("titles", mapping.AvgCombiner, nil, titleMatcher())).
		AddStep(Step{
			Name:      "with-year",
			Matchers:  []match.Matcher{yearMatcher()},
			Use:       []string{"titles"},
			Op:        OpMerge,
			F:         mapping.Avg0Combiner,
			Selection: mapping.Threshold{T: 0.8},
		})
	e := NewEngine(store.NewRepository())
	got, err := e.Run(wf, dblp, acm)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Has("d3", "a3") || got.Has("d2", "a3") {
		t.Errorf("refinement failed: %v", got.Correspondences())
	}
}

func TestComposeStepViaRepository(t *testing.T) {
	// Compose two stored same-mappings via a hub (§4.1.2 / Figure 8).
	repo := store.NewRepository()
	gsPub := model.LDS{Source: "GS", Type: model.Publication}
	dblpGS := mapping.NewSame(dblpPub, gsPub)
	dblpGS.Add("d1", "g1", 1)
	gsACM := mapping.NewSame(gsPub, acmPub)
	gsACM.Add("g1", "a1", 0.8)
	repo.Put("DBLP-GS", dblpGS)
	repo.Put("GS-ACM", gsACM)

	wf := New("via-gs").AddStep(ComposeStep("composed", mapping.MinCombiner, mapping.AggMax, nil, "DBLP-GS", "GS-ACM")).Store("DBLP-ACM.composed")
	e := NewEngine(repo)
	got, err := e.Run(wf, model.NewObjectSet(dblpPub), model.NewObjectSet(acmPub))
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := got.Sim("d1", "a1"); !ok || s != 0.8 {
		t.Errorf("composed sim = %v, %v", s, ok)
	}
	if _, ok := repo.Get("DBLP-ACM.composed"); !ok {
		t.Error("workflow result should be stored in the repository")
	}
}

func TestWorkflowAsMatcher(t *testing.T) {
	dblp, acm := fixtureSets()
	wf := New("inner").AddStep(MergeStep("m", mapping.AvgCombiner, nil, titleMatcher()))
	e := NewEngine(store.NewRepository())
	m := wf.AsMatcher(e)
	if m.Name() != "inner" {
		t.Errorf("Name = %q", m.Name())
	}
	got, err := m.Match(dblp, acm)
	if err != nil || got.Len() == 0 {
		t.Errorf("workflow-as-matcher failed: %v, %v", got, err)
	}
	reg := match.NewRegistry()
	if err := reg.Register(m); err != nil {
		t.Errorf("workflow should register in the matcher library: %v", err)
	}
}

// workersProbe records the Workers setting its Match invocation ran with,
// mimicking a ConfigurableWorkers matcher.
type workersProbe struct {
	workers int
	ran     *int
}

func (p *workersProbe) Name() string { return "probe" }

func (p *workersProbe) Match(a, b *model.ObjectSet) (*mapping.Mapping, error) {
	*p.ran = p.workers
	return mapping.NewSame(a.LDS(), b.LDS()), nil
}

func (p *workersProbe) WithWorkers(n int) match.Matcher {
	cp := *p
	cp.workers = n
	return &cp
}

// TestEngineWorkersOverride asserts the engine pushes its Workers setting
// through ConfigurableWorkers matchers without mutating the originals, and
// leaves matchers alone when Workers is unset.
func TestEngineWorkersOverride(t *testing.T) {
	a, b := fixtureSets()
	var ran int
	probe := &workersProbe{workers: 1, ran: &ran}
	w := New("workers").AddStep(MergeStep("s1", mapping.AvgCombiner, nil, probe))

	e := &Engine{Cache: store.NewCache(0), Workers: 6}
	if _, err := e.Run(w, a, b); err != nil {
		t.Fatal(err)
	}
	if ran != 6 {
		t.Errorf("matcher ran with %d workers, want engine override 6", ran)
	}
	if probe.workers != 1 {
		t.Error("engine mutated the registered matcher")
	}

	e.Workers = 0
	if _, err := e.Run(w, a, b); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Errorf("matcher ran with %d workers, want its own setting 1", ran)
	}

	// The override must also produce identical match results on a real
	// attribute matcher.
	attr := &match.Attribute{
		MatcherName: "title", AttrA: "title", AttrB: "title",
		Sim: sim.Trigram, Threshold: 0.7,
	}
	wf := New("real").AddStep(MergeStep("s1", mapping.AvgCombiner, nil, attr))
	seq := &Engine{Cache: store.NewCache(0)}
	par := &Engine{Cache: store.NewCache(0), Workers: 8}
	ms, err := seq.Run(wf, a, b)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := par.Run(wf, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !ms.Equal(mp, 0) {
		t.Error("engine-parallel run diverged from sequential run")
	}
}

func TestRunErrors(t *testing.T) {
	dblp, acm := fixtureSets()
	e := NewEngine(store.NewRepository())

	if _, err := e.Run(New("empty"), dblp, acm); err == nil {
		t.Error("empty workflow should fail")
	}
	noInputs := New("x").AddStep(Step{Name: "s", Op: OpMerge, F: mapping.AvgCombiner})
	if _, err := e.Run(noInputs, dblp, acm); err == nil {
		t.Error("step without inputs should fail")
	}
	missingRef := New("x").AddStep(Step{Name: "s", Use: []string{"ghost"}, Op: OpMerge, F: mapping.AvgCombiner})
	if _, err := e.Run(missingRef, dblp, acm); err == nil {
		t.Error("unknown reference should fail")
	}
	composeOne := New("x").AddStep(Step{Name: "s", Matchers: []match.Matcher{titleMatcher()}, Op: OpCompose, F: mapping.MinCombiner, G: mapping.AggMax})
	if _, err := e.Run(composeOne, dblp, acm); err == nil {
		t.Error("compose with one input should fail")
	}
	badOp := New("x").AddStep(Step{Name: "s", Matchers: []match.Matcher{titleMatcher()}, Op: OpKind(9)})
	if _, err := e.Run(badOp, dblp, acm); err == nil {
		t.Error("unknown operator should fail")
	}
	failing := match.Func{MatcherName: "boom", Fn: func(a, b *model.ObjectSet) (*mapping.Mapping, error) {
		return nil, errBoom
	}}
	withFailing := New("x").AddStep(MergeStep("s", mapping.AvgCombiner, nil, failing))
	if _, err := e.Run(withFailing, dblp, acm); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("matcher error should propagate, got %v", err)
	}
}

var errBoom = errFor("boom")

type errFor string

func (e errFor) Error() string { return string(e) }

func TestTraceAndString(t *testing.T) {
	dblp, acm := fixtureSets()
	wf := New("traced").AddStep(MergeStep("m", mapping.AvgCombiner, mapping.Threshold{T: 0.5}, titleMatcher()))
	e := NewEngine(store.NewRepository())
	var lines []string
	e.Trace = func(s string) { lines = append(lines, s) }
	if _, err := e.Run(wf, dblp, acm); err != nil {
		t.Fatal(err)
	}
	if len(lines) < 2 {
		t.Errorf("trace lines = %v", lines)
	}
	out := wf.String()
	if !strings.Contains(out, "traced") || !strings.Contains(out, "merge") {
		t.Errorf("String = %q", out)
	}
	if OpMerge.String() != "merge" || OpCompose.String() != "compose" || OpKind(5).String() == "" {
		t.Error("OpKind names wrong")
	}
}

func TestDefaultStepNames(t *testing.T) {
	dblp, acm := fixtureSets()
	wf := New("x").AddStep(Step{Matchers: []match.Matcher{titleMatcher()}, Op: OpMerge, F: mapping.AvgCombiner})
	e := NewEngine(store.NewRepository())
	if _, err := e.Run(wf, dblp, acm); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Cache.Get("step1"); !ok {
		t.Error("unnamed step should cache as step1")
	}
}
