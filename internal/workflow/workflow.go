// Package workflow implements MOMA's match process model (§2.2, Figure 3):
// a workflow is a sequence of steps, each consisting of optional matcher
// executions plus a mapping combiner (a mapping operator followed by an
// optional selection). Steps read additional inputs from the mapping cache
// and the mapping repository, write their result to the cache, and the
// final same-mapping can be stored back into the repository for re-use by
// other match tasks. A whole workflow can register as a matcher in the
// matcher library ("Selected workflows can be added to the matcher library
// for use in other match tasks").
package workflow

import (
	"fmt"
	"strings"

	"repro/internal/mapping"
	"repro/internal/match"
	"repro/internal/model"
	"repro/internal/store"
)

// OpKind selects the mapping operator of a step's combiner.
type OpKind int

// Operators: merge unifies the step's input mappings; compose chains them
// left to right (two or more inputs).
const (
	OpMerge OpKind = iota
	OpCompose
)

// String names the operator.
func (k OpKind) String() string {
	switch k {
	case OpMerge:
		return "merge"
	case OpCompose:
		return "compose"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Step is one workflow step.
type Step struct {
	// Name labels the step; it defaults to "step<i>" and names the cache
	// entry holding the step result.
	Name string
	// Matchers are executed against the workflow inputs; their results
	// join the combiner inputs.
	Matchers []match.Matcher
	// Use references mappings by name, resolved against the cache first
	// (earlier step results) and the repository second.
	Use []string
	// Op combines the collected mappings.
	Op OpKind
	// F is the similarity combination function (merge; per-path for
	// compose).
	F mapping.Combiner
	// G is the path aggregation for compose.
	G mapping.PathAgg
	// Selection optionally filters the combined mapping.
	Selection mapping.Selection
}

// Workflow is a named sequence of steps.
type Workflow struct {
	Name  string
	Steps []Step
	// StoreAs persists the final mapping into the repository under this
	// name when non-empty.
	StoreAs string
}

// New starts a workflow definition.
func New(name string) *Workflow { return &Workflow{Name: name} }

// AddStep appends a step and returns the workflow for chaining.
func (w *Workflow) AddStep(s Step) *Workflow {
	w.Steps = append(w.Steps, s)
	return w
}

// Store sets the repository name for the final mapping.
func (w *Workflow) Store(name string) *Workflow {
	w.StoreAs = name
	return w
}

// String renders the workflow structure.
func (w *Workflow) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workflow %s\n", w.Name)
	for i, s := range w.Steps {
		name := s.Name
		if name == "" {
			name = fmt.Sprintf("step%d", i+1)
		}
		fmt.Fprintf(&b, "  %s: %d matchers, use=%v, op=%s(f=%s", name, len(s.Matchers), s.Use, s.Op, s.F.Kind)
		if s.Op == OpCompose {
			fmt.Fprintf(&b, ", g=%s", s.G)
		}
		b.WriteString(")")
		if s.Selection != nil {
			fmt.Fprintf(&b, " select=%s", s.Selection)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Engine executes workflows against a repository, a cache and the matcher
// library.
type Engine struct {
	Repo  *store.Store
	Cache *store.Store
	// Workers, when > 0, sets the scoring parallelism of every matcher that
	// supports external configuration (match.ConfigurableWorkers) and the
	// worker-team size of every mapping operator (merge, compose, and
	// worker-tunable selections) for the duration of a run; 0 keeps each
	// matcher's own setting and lets operators default to GOMAXPROCS.
	// Matchers and selections are never mutated — the engine runs
	// configured copies. Operator outputs are bit-identical at every
	// worker count, so Workers tunes wall-clock time only.
	Workers int
	// Trace receives progress lines when non-nil.
	Trace func(string)
}

// NewEngine returns an engine with a fresh unbounded cache.
func NewEngine(repo *store.Store) *Engine {
	return &Engine{Repo: repo, Cache: store.NewCache(0)}
}

// resolve finds a named mapping, cache first, then repository.
func (e *Engine) resolve(name string) (*mapping.Mapping, error) {
	if e.Cache != nil {
		if m, ok := e.Cache.Get(name); ok {
			return m, nil
		}
	}
	if e.Repo != nil {
		if m, ok := e.Repo.Get(name); ok {
			return m, nil
		}
	}
	return nil, fmt.Errorf("workflow: no mapping named %q in cache or repository", name)
}

// Run executes the workflow on the two input object sets and returns the
// final same-mapping. Each step result is cached under the step name; the
// final mapping is stored in the repository when the workflow requests it.
func (e *Engine) Run(w *Workflow, a, b *model.ObjectSet) (*mapping.Mapping, error) {
	if len(w.Steps) == 0 {
		return nil, fmt.Errorf("workflow: %s has no steps", w.Name)
	}
	var result *mapping.Mapping
	for i := range w.Steps {
		s := &w.Steps[i]
		name := s.Name
		if name == "" {
			name = fmt.Sprintf("step%d", i+1)
		}
		var inputs []*mapping.Mapping
		for _, m := range s.Matchers {
			if e.Workers > 0 {
				if cw, ok := m.(match.ConfigurableWorkers); ok {
					m = cw.WithWorkers(e.Workers)
				}
			}
			mm, err := m.Match(a, b)
			if err != nil {
				return nil, fmt.Errorf("workflow: %s/%s: matcher %s: %w", w.Name, name, m.Name(), err)
			}
			if e.Trace != nil {
				e.Trace(fmt.Sprintf("%s/%s: matcher %s -> %d corrs", w.Name, name, m.Name(), mm.Len()))
			}
			inputs = append(inputs, mm)
		}
		for _, ref := range s.Use {
			mm, err := e.resolve(ref)
			if err != nil {
				return nil, fmt.Errorf("workflow: %s/%s: %w", w.Name, name, err)
			}
			inputs = append(inputs, mm)
		}
		if len(inputs) == 0 {
			return nil, fmt.Errorf("workflow: %s/%s: step has no inputs", w.Name, name)
		}
		var combined *mapping.Mapping
		var err error
		switch s.Op {
		case OpMerge:
			combined, err = mapping.MergeWorkers(s.F, e.Workers, inputs...)
		case OpCompose:
			if len(inputs) < 2 {
				err = fmt.Errorf("compose needs at least two mappings, got %d", len(inputs))
			} else {
				combined, err = mapping.ComposeChainWorkers(s.F, s.G, e.Workers, inputs...)
			}
		default:
			err = fmt.Errorf("unknown operator %d", int(s.Op))
		}
		if err != nil {
			return nil, fmt.Errorf("workflow: %s/%s: %w", w.Name, name, err)
		}
		if s.Selection != nil {
			sel := s.Selection
			if e.Workers > 0 {
				if t, ok := sel.(mapping.WorkerTunable); ok {
					sel = t.WithWorkers(e.Workers)
				}
			}
			combined = sel.Apply(combined)
		}
		if e.Trace != nil {
			e.Trace(fmt.Sprintf("%s/%s: %s -> %d corrs", w.Name, name, s.Op, combined.Len()))
		}
		if e.Cache != nil {
			if err := e.Cache.Put(name, combined); err != nil {
				return nil, fmt.Errorf("workflow: %s/%s: cache: %w", w.Name, name, err)
			}
		}
		result = combined
	}
	if w.StoreAs != "" && e.Repo != nil {
		if err := e.Repo.Put(w.StoreAs, result); err != nil {
			return nil, fmt.Errorf("workflow: %s: store result: %w", w.Name, err)
		}
	}
	return result, nil
}

// AsMatcher registers the workflow as a matcher: running it through the
// engine when invoked. This realizes the paper's note that workflows join
// the matcher library.
func (w *Workflow) AsMatcher(e *Engine) match.Matcher {
	return match.Func{
		MatcherName: w.Name,
		Fn: func(a, b *model.ObjectSet) (*mapping.Mapping, error) {
			return e.Run(w, a, b)
		},
	}
}

// MergeStep is a convenience constructor for the common merge step.
func MergeStep(name string, f mapping.Combiner, sel mapping.Selection, matchers ...match.Matcher) Step {
	return Step{Name: name, Matchers: matchers, Op: OpMerge, F: f, Selection: sel}
}

// ComposeStep is a convenience constructor for a compose step over named
// mappings.
func ComposeStep(name string, f mapping.Combiner, g mapping.PathAgg, sel mapping.Selection, use ...string) Step {
	return Step{Name: name, Use: use, Op: OpCompose, F: f, G: g, Selection: sel}
}
