package store

// The crash matrix: every faultfs failure mode at every persistence write
// site. The invariants under test, for each (site × fault) cell:
//
//   - the mutation fails with a typed *StorageError (never a panic, never a
//     silent success),
//   - a WAL-append fault flips the store read-only (degraded) while reads
//     keep answering, and Recover lifts the degradation after re-verifying
//     the log,
//   - a compaction fault never degrades the store, never publishes a
//     partial snapshot, and never wedges later writes,
//   - reopening the directory — a crash — recovers exactly the acknowledged
//     (durable) state: nothing lost, nothing invented.

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/mapping"
	"repro/internal/model"
)

// openInjected opens a repository in dir through a fresh fault injector
// with an empty schedule.
func openInjected(t testing.TB, dir string) (*Store, *faultfs.Injector) {
	t.Helper()
	inj := faultfs.NewInjector(nil)
	s, err := OpenRepositoryFS(dir, inj)
	if err != nil {
		t.Fatal(err)
	}
	return s, inj
}

// fingerprint captures the observable store state: names in order plus the
// total row count.
func fingerprint(s *Store) (names []string, rows int) {
	return s.Names(), storeRows(s)
}

func TestCrashMatrixWALAppend(t *testing.T) {
	faults := []struct {
		name string
		rule faultfs.Rule
	}{
		{"enospc", faultfs.Rule{Op: faultfs.OpWrite, Path: "wal.jsonl", Err: syscall.ENOSPC, Sticky: true}},
		{"short-write", faultfs.Rule{Op: faultfs.OpWrite, Path: "wal.jsonl", Kind: faultfs.KindShortWrite, N: 7, Sticky: true}},
		{"fail-after-bytes", faultfs.Rule{Op: faultfs.OpWrite, Path: "wal.jsonl", Kind: faultfs.KindFailAfter, N: 10, Err: syscall.ENOSPC}},
	}
	sites := []struct {
		name   string
		mutate func(s *Store) error
	}{
		{"put", func(s *Store) error { return s.Put("victim", sampleMapping(4)) }},
		{"delta", func(s *Store) error {
			return s.PutDelta("live.x", dblpPub, acmPub, model.SameMappingType,
				[]mapping.Correspondence{{Domain: "dx", Range: "rx", Sim: 0.5}})
		}},
		{"delete", func(s *Store) error { _, err := s.Delete("base"); return err }},
		{"clear", func(s *Store) error { return s.Clear() }},
	}
	for _, fault := range faults {
		for _, site := range sites {
			t.Run(site.name+"/"+fault.name, func(t *testing.T) {
				dir := t.TempDir()
				s, inj := openInjected(t, dir)
				defer s.Close()
				// Acknowledged baseline the fault must not touch.
				if err := s.Put("base", sampleMapping(3)); err != nil {
					t.Fatal(err)
				}
				if err := s.PutDelta("live.base", dblpPub, acmPub, model.SameMappingType,
					[]mapping.Correspondence{{Domain: "a", Range: "b", Sim: 0.9}}); err != nil {
					t.Fatal(err)
				}
				baseNames, baseRows := fingerprint(s)

				inj.Inject(fault.rule)
				err := site.mutate(s)
				if err == nil {
					t.Fatal("mutation over a faulted WAL must fail")
				}
				var serr *StorageError
				if !errors.As(err, &serr) || serr.Op != "wal-append" {
					t.Fatalf("want *StorageError{Op: wal-append}, got %T %v", err, err)
				}
				if !errors.Is(err, faultfs.ErrInjected) {
					t.Fatalf("error chain must reach the injected fault: %v", err)
				}

				// The store is degraded: mutations fail fast with the cause,
				// reads keep answering from memory.
				if s.Degraded() == nil {
					t.Fatal("WAL-append fault must degrade the store")
				}
				if err := s.Put("other", sampleMapping(1)); !errors.Is(err, ErrDegraded) {
					t.Fatalf("degraded mutation: got %v, want ErrDegraded", err)
				}
				if !errors.Is(s.Degraded(), faultfs.ErrInjected) {
					t.Fatalf("Degraded() must carry the cause: %v", s.Degraded())
				}
				if m, ok := s.Get("base"); !ok || m.Len() != 3 {
					t.Fatal("reads must keep working while degraded")
				}
				if gotNames, gotRows := fingerprint(s); !equalStrings(gotNames, baseNames) || gotRows != baseRows {
					t.Fatalf("failed mutation leaked into memory: %v/%d, want %v/%d",
						gotNames, gotRows, baseNames, baseRows)
				}

				// Crash now: a reopen recovers exactly the acknowledged state,
				// torn tail (if the fault left one) dropped.
				re, err := OpenRepository(dir)
				if err != nil {
					t.Fatalf("reopen after %s/%s: %v", site.name, fault.name, err)
				}
				if gotNames, gotRows := fingerprint(re); !equalStrings(gotNames, baseNames) || gotRows != baseRows {
					t.Fatalf("crash recovery diverged: %v/%d, want %v/%d", gotNames, gotRows, baseNames, baseRows)
				}
				re.Close()

				// Recover on the live store: with the fault gone it truncates
				// the torn tail, probes the log, and lifts the degradation.
				inj.ClearFaults()
				if err := s.Recover(); err != nil {
					t.Fatalf("Recover with fault cleared: %v", err)
				}
				if s.Degraded() != nil {
					t.Fatal("Recover must lift the degradation")
				}
				if err := s.Put("post-recover", sampleMapping(2)); err != nil {
					t.Fatalf("write after Recover: %v", err)
				}
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
				re2, err := OpenRepository(dir)
				if err != nil {
					t.Fatalf("reopen after recover: %v", err)
				}
				defer re2.Close()
				if !re2.Has("post-recover") || !re2.Has("base") {
					t.Fatal("post-recovery write or baseline lost across restart")
				}
			})
		}
	}
}

// TestCrashMatrixRecoverRetry pins Recover's own failure handling: while
// the fault persists Recover fails (typed, store stays degraded) and may be
// retried; each retry starts from the freshest handle state.
func TestCrashMatrixRecoverRetry(t *testing.T) {
	dir := t.TempDir()
	s, inj := openInjected(t, dir)
	defer s.Close()
	if err := s.Put("base", sampleMapping(2)); err != nil {
		t.Fatal(err)
	}
	inj.Inject(faultfs.Rule{Op: faultfs.OpWrite, Path: "wal.jsonl", Err: syscall.ENOSPC, Sticky: true})
	if err := s.Put("fail", sampleMapping(1)); err == nil {
		t.Fatal("faulted put must fail")
	}
	// The probe write hits the same sticky fault: Recover fails, degraded
	// stays set.
	if err := s.Recover(); err == nil {
		t.Fatal("Recover under a persisting fault must fail")
	}
	var serr *StorageError
	if err := s.Recover(); !errors.As(err, &serr) {
		t.Fatalf("retried Recover: want *StorageError, got %T %v", err, err)
	}
	if s.Degraded() == nil {
		t.Fatal("failed Recover must leave the store degraded")
	}
	inj.ClearFaults()
	if err := s.Recover(); err != nil {
		t.Fatalf("Recover after fault cleared: %v", err)
	}
	if err := s.Put("after", sampleMapping(1)); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
}

func TestCrashMatrixCompaction(t *testing.T) {
	cases := []struct {
		name   string
		rule   faultfs.Rule
		wantOp string
	}{
		{"create", faultfs.Rule{Op: faultfs.OpCreate, Path: "snapshot-", Err: syscall.ENOSPC}, "snapshot-create"},
		{"write", faultfs.Rule{Op: faultfs.OpWrite, Path: "snapshot-", Err: syscall.ENOSPC}, "snapshot-write"},
		{"short-write", faultfs.Rule{Op: faultfs.OpWrite, Path: "snapshot-", Kind: faultfs.KindShortWrite}, "snapshot-write"},
		{"sync", faultfs.Rule{Op: faultfs.OpSync, Path: "snapshot-", Err: syscall.EIO}, "snapshot-sync"},
		{"close", faultfs.Rule{Op: faultfs.OpClose, Path: "snapshot-", Err: syscall.EIO}, "snapshot-close"},
		{"rename", faultfs.Rule{Op: faultfs.OpRename, Path: "snapshot.jsonl", Err: syscall.EIO}, "snapshot-rename"},
		{"torn-rename", faultfs.Rule{Op: faultfs.OpRename, Path: "snapshot.jsonl", Kind: faultfs.KindTornRename}, "snapshot-rename"},
		// The rule is armed after the repository is open, so the first
		// wal.jsonl open it sees is compaction's truncating reopen: this
		// cell is the "crash after the snapshot rename, before the log
		// truncate" schedule — the snapshot IS published and the
		// untruncated log replays on top of it.
		{"wal-truncate", faultfs.Rule{Op: faultfs.OpOpen, Path: "wal.jsonl", Err: syscall.EIO}, "wal-truncate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, inj := openInjected(t, dir)
			defer s.Close()
			for i := 0; i < 4; i++ {
				if err := s.Put(fmt.Sprintf("m%d", i), sampleMapping(i+1)); err != nil {
					t.Fatal(err)
				}
			}
			baseNames, baseRows := fingerprint(s)

			inj.Inject(tc.rule)
			err := s.Compact()
			if err == nil {
				t.Fatal("faulted compaction must fail")
			}
			var serr *StorageError
			if !errors.As(err, &serr) || serr.Op != tc.wantOp {
				t.Fatalf("want *StorageError{Op: %s}, got %T %v", tc.wantOp, err, err)
			}

			// Compaction faults never degrade: the log holding every
			// acknowledged write is intact, so writes keep working.
			if s.Degraded() != nil {
				t.Fatalf("compaction fault must not degrade the store: %v", s.Degraded())
			}
			if err := s.Put("after-fault", sampleMapping(2)); err != nil {
				t.Fatalf("write after failed compaction: %v", err)
			}

			// No partial snapshot may be published or left behind: the tmp
			// file is rolled back on every failure path.
			tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
			if tc.wantOp != "wal-truncate" && len(tmps) != 0 {
				t.Fatalf("failed compaction left tmp files: %v", tmps)
			}

			// Crash now: recovery must see the pre-compaction state plus the
			// post-fault write — whether the snapshot was published (the
			// wal-truncate cell) or not.
			re, err := OpenRepository(dir)
			if err != nil {
				t.Fatalf("reopen after failed compaction: %v", err)
			}
			wantNames := append(append([]string{}, baseNames...), "after-fault")
			if gotNames, gotRows := fingerprint(re); !equalStrings(gotNames, wantNames) || gotRows != baseRows+2 {
				t.Fatalf("recovery diverged: %v/%d, want %v/%d", gotNames, gotRows, wantNames, baseRows+2)
			}
			re.Close()

			// The fault gone, compaction succeeds and the state survives it.
			inj.ClearFaults()
			if err := s.Compact(); err != nil {
				t.Fatalf("compaction after fault cleared: %v", err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			re2, err := OpenRepository(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer re2.Close()
			if gotNames, gotRows := fingerprint(re2); !equalStrings(gotNames, wantNames) || gotRows != baseRows+2 {
				t.Fatalf("post-compaction recovery diverged: %v/%d", gotNames, gotRows)
			}
		})
	}
}

// TestWALTailRepairedOnOpen pins the torn-tail repair: opening a repository
// whose log ends in a torn record truncates the torn bytes away, so a later
// append starts on a record boundary instead of merging into the garbage —
// which a subsequent replay would have had to reject as mid-file
// corruption (real data loss from a mere crash artifact).
func TestWALTailRepairedOnOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("keep", sampleMapping(3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, walFile)
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"op":"put","name":"torn","domain":"Pub`)
	f.Close()

	re, err := OpenRepository(dir)
	if err != nil {
		t.Fatalf("open over a torn tail: %v", err)
	}
	if re.Has("torn") {
		t.Fatal("torn record must not be applied")
	}
	// The repair must be physical: the torn bytes are gone from the file.
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "torn") {
		t.Fatalf("torn bytes survived the open: %q", data)
	}
	// Append after the repair, then replay a third time: under tail-merge
	// this reopen failed with mid-file corruption.
	if err := re.Put("after", sampleMapping(2)); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := OpenRepository(dir)
	if err != nil {
		t.Fatalf("replay after post-repair append: %v", err)
	}
	defer re2.Close()
	if !re2.Has("keep") || !re2.Has("after") || re2.Has("torn") {
		t.Fatalf("recovered names = %v", re2.Names())
	}
}

// TestRecoverTruncatesTornTail drives the same repair through the live
// Recover path: a short write tears the log mid-record, Recover drops the
// torn bytes and re-verifies, and the next replay sees a clean file.
func TestRecoverTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	s, inj := openInjected(t, dir)
	defer s.Close()
	if err := s.PutDelta("live.m", dblpPub, acmPub, model.SameMappingType,
		[]mapping.Correspondence{{Domain: "a", Range: "b", Sim: 0.8}}); err != nil {
		t.Fatal(err)
	}
	inj.Inject(faultfs.Rule{Op: faultfs.OpWrite, Path: "wal.jsonl", Kind: faultfs.KindShortWrite, N: 9})
	if err := s.PutDelta("live.m", dblpPub, acmPub, model.SameMappingType,
		[]mapping.Correspondence{{Domain: "c", Range: "d", Sim: 0.7}}); err == nil {
		t.Fatal("short write must fail the delta")
	}
	walPath := filepath.Join(dir, walFile)
	info, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	torn := info.Size()
	if err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	// Recover truncated the 9 torn bytes and appended its no-op probe; the
	// file must again end on a record boundary.
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) >= torn+1 {
		// 9 torn bytes out, ~15-byte probe in; the point is the torn prefix
		// is gone, checked structurally below.
		t.Logf("wal grew from %d to %d bytes across Recover", torn, len(data))
	}
	if len(data) == 0 || data[len(data)-1] != '\n' {
		t.Fatal("recovered wal must end on a record boundary")
	}
	if err := s.PutDelta("live.m", dblpPub, acmPub, model.SameMappingType,
		[]mapping.Correspondence{{Domain: "e", Range: "f", Sim: 0.6}}); err != nil {
		t.Fatalf("delta after recovery: %v", err)
	}
	re, err := OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	m, ok := re.Get("live.m")
	if !ok || m.Len() != 2 {
		t.Fatalf("recovered rows = %v, want the 2 acknowledged deltas", m)
	}
	if m.DomainCount("c") != 0 {
		t.Fatal("unacknowledged (torn) delta resurrected by replay")
	}
}

func TestRecoverOnHealthyStores(t *testing.T) {
	if err := NewRepository().Recover(); err != nil {
		t.Errorf("Recover on a healthy in-memory store: %v", err)
	}
	dir := t.TempDir()
	s, err := OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Recover(); err != nil {
		t.Errorf("Recover on a healthy repository: %v", err)
	}
}

// FuzzCrashSchedule is the chaos half of the matrix: a seeded pseudo-random
// fault schedule over a seeded delta workload with aggressive
// auto-compaction, interleaved Recover attempts and manual compactions.
// The properties: the store never panics or silently drops an acknowledged
// write; once the chaos stops, Recover always succeeds; and a crash-reopen
// recovers exactly the acknowledged rows (AddMax of every delta whose
// PutDelta returned nil) — nothing lost, nothing invented.
func FuzzCrashSchedule(f *testing.F) {
	f.Add(int64(1), uint8(3))
	f.Add(int64(42), uint8(2))
	f.Add(int64(7), uint8(5))
	f.Add(int64(-9000), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, every uint8) {
		dir := t.TempDir()
		s, inj := openInjected(t, dir)
		defer s.Close()
		s.SetAutoCompact(2, 8) // compact constantly, so chaos hits that path too
		inj.SeedSchedule(seed, 2+int(every%6))

		shadow := map[[2]string]float64{} // acknowledged AddMax state
		rnd := rand.New(rand.NewSource(seed))
		for i := 0; i < 120; i++ {
			d := fmt.Sprintf("d%d", rnd.Intn(20))
			r := fmt.Sprintf("r%d", rnd.Intn(20))
			sim := float64(1+rnd.Intn(99)) / 100
			err := s.PutDelta("live.chaos", dblpPub, acmPub, model.SameMappingType,
				[]mapping.Correspondence{{Domain: model.ID(d), Range: model.ID(r), Sim: sim}})
			if err == nil {
				k := [2]string{d, r}
				if sim > shadow[k] {
					shadow[k] = sim
				}
			} else {
				if s.Degraded() == nil {
					t.Fatalf("failed delta without degradation: %v", err)
				}
				_ = s.Recover() // may fail under chaos; retried on a later round
			}
			if i%17 == 16 {
				_ = s.Compact() // may fail under chaos (or while degraded); must not wedge
			}
		}

		// Chaos off: recovery must now succeed and the store must be
		// writable again.
		inj.ClearFaults()
		if s.Degraded() != nil {
			if err := s.Recover(); err != nil {
				t.Fatalf("Recover with chaos stopped: %v", err)
			}
		}
		if err := s.PutDelta("live.chaos", dblpPub, acmPub, model.SameMappingType,
			[]mapping.Correspondence{{Domain: "final", Range: "row", Sim: 1}}); err != nil {
			t.Fatalf("write after chaos: %v", err)
		}
		shadow[[2]string{"final", "row"}] = 1

		// Crash: reopen the directory without closing the writer.
		re, err := OpenRepository(dir)
		if err != nil {
			t.Fatalf("crash recovery failed: %v", err)
		}
		defer re.Close()
		m, ok := re.Get("live.chaos")
		if !ok {
			t.Fatal("chaos mapping lost")
		}
		if m.Len() != len(shadow) {
			t.Fatalf("recovered %d rows, acknowledged %d", m.Len(), len(shadow))
		}
		for k, want := range shadow {
			if got, ok := m.Sim(model.ID(k[0]), model.ID(k[1])); !ok || got != want {
				t.Fatalf("row (%s,%s): recovered %v (ok=%v), acknowledged %v", k[0], k[1], got, ok, want)
			}
		}
	})
}
