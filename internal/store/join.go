package store

import (
	"fmt"
	"sort"

	"repro/internal/mapping"
	"repro/internal/model"
)

// Join algorithms over mapping tables. A compose of map1 (A->C) with map2
// (C->B) is an equi-join on the middle ids; this file provides a hash-join
// and a sort-merge-join implementation plus a ComposeVia helper that runs
// either join and then applies the paper's path combination (f) and
// aggregation (g) functions. mapping.Compose uses a hash join internally;
// ComposeVia exists so the two strategies can be benchmarked and
// cross-checked against each other.

// JoinRow is one joined compose path (a, c, b) with both path similarities.
type JoinRow struct {
	A, C, B model.ID
	S1, S2  float64
}

// JoinAlgorithm selects the physical join implementation.
type JoinAlgorithm int

// Available join algorithms.
const (
	HashJoin JoinAlgorithm = iota
	SortMergeJoin
)

// String names the algorithm.
func (a JoinAlgorithm) String() string {
	switch a {
	case HashJoin:
		return "hash"
	case SortMergeJoin:
		return "sort-merge"
	default:
		return fmt.Sprintf("JoinAlgorithm(%d)", int(a))
	}
}

// Join computes all compose paths of map1 (A->C) and map2 (C->B) with the
// chosen algorithm. Row order is deterministic for a given algorithm but
// differs between algorithms; use SortRows to compare outputs.
func Join(map1, map2 *mapping.Mapping, alg JoinAlgorithm) ([]JoinRow, error) {
	if map1.Range() != map2.Domain() {
		return nil, fmt.Errorf("store: join middle sources differ: %s vs %s", map1.Range(), map2.Domain())
	}
	switch alg {
	case HashJoin:
		return hashJoin(map1, map2), nil
	case SortMergeJoin:
		return sortMergeJoin(map1, map2), nil
	default:
		return nil, fmt.Errorf("store: unknown join algorithm %d", int(alg))
	}
}

// hashJoin builds a hash table over map2's domain ordinals and probes it
// with map1's range column — integer keys end to end, ids resolved only to
// fill the output rows. Mixed-dictionary inputs translate the probe key per
// row.
func hashJoin(map1, map2 *mapping.Mapping) []JoinRow {
	type buildRow struct {
		rng uint32
		sim float64
	}
	build := make(map[uint32][]buildRow)
	map2.EachOrd(func(d, r uint32, s float64) bool {
		build[d] = append(build[d], buildRow{rng: r, sim: s})
		return true
	})
	sameDict := map1.Dict() == map2.Dict()
	ids1, ids2 := map1.Dict().All(), map2.Dict().All()
	var rows []JoinRow
	map1.EachOrd(func(d, r uint32, s float64) bool {
		mid := r
		if !sameDict {
			o2, ok := map2.Dict().Lookup(ids1[r])
			if !ok {
				return true
			}
			mid = o2
		}
		for _, b := range build[mid] {
			rows = append(rows, JoinRow{A: ids1[d], C: ids1[r], B: ids2[b.rng], S1: s, S2: b.sim})
		}
		return true
	})
	return rows
}

// sortMergeJoin sorts both inputs on the join key and merges them,
// expanding duplicate-key blocks pairwise.
func sortMergeJoin(map1, map2 *mapping.Mapping) []JoinRow {
	left := map1.Correspondences()
	sort.Slice(left, func(i, j int) bool {
		if left[i].Range != left[j].Range {
			return left[i].Range < left[j].Range
		}
		return left[i].Domain < left[j].Domain
	})
	right := map2.Correspondences()
	sort.Slice(right, func(i, j int) bool {
		if right[i].Domain != right[j].Domain {
			return right[i].Domain < right[j].Domain
		}
		return right[i].Range < right[j].Range
	})
	var rows []JoinRow
	i, j := 0, 0
	for i < len(left) && j < len(right) {
		switch {
		case left[i].Range < right[j].Domain:
			i++
		case left[i].Range > right[j].Domain:
			j++
		default:
			key := left[i].Range
			iEnd := i
			for iEnd < len(left) && left[iEnd].Range == key {
				iEnd++
			}
			jEnd := j
			for jEnd < len(right) && right[jEnd].Domain == key {
				jEnd++
			}
			for x := i; x < iEnd; x++ {
				for y := j; y < jEnd; y++ {
					rows = append(rows, JoinRow{
						A: left[x].Domain, C: key, B: right[y].Range,
						S1: left[x].Sim, S2: right[y].Sim,
					})
				}
			}
			i, j = iEnd, jEnd
		}
	}
	return rows
}

// SortRows orders join rows canonically (A, C, B) for comparisons.
func SortRows(rows []JoinRow) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].A != rows[j].A {
			return rows[i].A < rows[j].A
		}
		if rows[i].C != rows[j].C {
			return rows[i].C < rows[j].C
		}
		return rows[i].B < rows[j].B
	})
}

// ComposeVia composes map1 and map2 like mapping.Compose but with an
// explicit join algorithm; results are identical regardless of algorithm.
func ComposeVia(map1, map2 *mapping.Mapping, f mapping.Combiner, g mapping.PathAgg, alg JoinAlgorithm) (*mapping.Mapping, error) {
	rows, err := Join(map1, map2, alg)
	if err != nil {
		return nil, err
	}
	outType := map1.Type()
	if !(map1.IsSame() && map2.IsSame()) {
		outType = map1.Type() + "." + map2.Type()
	}
	out := mapping.New(map1.Domain(), map2.Range(), outType)

	type agg struct {
		sum, min, max float64
		paths         int
	}
	type pairKey struct{ a, b model.ID }
	accum := make(map[pairKey]*agg)
	var order []pairKey
	for _, row := range rows {
		ps := mapping.PathCombine(f, row.S1, row.S2)
		key := pairKey{row.A, row.B}
		s, ok := accum[key]
		if !ok {
			s = &agg{min: ps, max: ps}
			accum[key] = s
			order = append(order, key)
		} else {
			if ps < s.min {
				s.min = ps
			}
			if ps > s.max {
				s.max = ps
			}
		}
		s.sum += ps
		s.paths++
	}
	for _, key := range order {
		a := accum[key]
		var s float64
		switch g {
		case mapping.AggAvg:
			s = a.sum / float64(a.paths)
		case mapping.AggMin:
			s = a.min
		case mapping.AggMax:
			s = a.max
		case mapping.AggRelativeLeft:
			s = a.sum / float64(map1.DomainCount(key.a))
		case mapping.AggRelativeRight:
			s = a.sum / float64(map2.RangeCount(key.b))
		case mapping.AggRelative:
			s = 2 * a.sum / float64(map1.DomainCount(key.a)+map2.RangeCount(key.b))
		default:
			return nil, fmt.Errorf("store: unknown path aggregation %d", int(g))
		}
		if s > 0 {
			out.Add(key.a, key.b, s)
		}
	}
	return out, nil
}
