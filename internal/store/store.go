// Package store implements MOMA's mapping repository and mapping cache
// (§2.2, Figure 3).
//
// The repository materializes association and same-mappings as relational
// mapping tables under stable names; the cache holds intermediate
// same-mappings derived during a match workflow. Both share the Store type:
// the repository is typically persistent (write-ahead log plus snapshot),
// while the cache is an in-memory bounded store.
//
// The package also provides hash-join and sort-merge-join implementations
// over mapping tables; the paper points out that mapping composition "can
// be computed very efficiently in our implementation by joining the mapping
// tables" (§5.3).
package store

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/faultfs"
	"repro/internal/mapping"
	"repro/internal/model"
)

// Store is a named collection of mappings, safe for concurrent use.
type Store struct {
	mu    sync.RWMutex
	maps  map[string]*mapping.Mapping // guarded by mu
	order []string                    // guarded by mu

	// dict is the ID dictionary mappings materialized by this store intern
	// through: the process-global model.IDs for in-memory stores (results
	// stored by matchers and operators already live there), a private
	// dictionary for persistent repositories (OpenRepository), so a closed
	// store's replayed vocabulary is released with it. Mappings stored by
	// reference keep whatever dictionary they were built with.
	dict *model.IDDict

	// wal, dir and fsys are set for persistent stores; fsys is the
	// filesystem seam every WAL/snapshot/compaction operation goes through
	// (faultfs.OS in production, an injector under test).
	wal  *walWriter
	dir  string
	fsys faultfs.FS

	// degraded is the *StorageError that flipped the store read-only, nil
	// while healthy. See fault.go (Degraded, Recover).
	degraded error // guarded by mu

	// Auto-compaction state (persistent stores): walRows counts the
	// correspondence rows appended to the log since open/compact, snapRows
	// the rows covered by the last snapshot. When walRows exceeds both
	// acMinRows and acRatio×snapRows, the next logged write folds the log
	// into a fresh snapshot. A failed fold never fails the write that
	// triggered it (the write is already durable in the log): the error is
	// parked in acErr, auto-compaction stands down until a successful
	// manual Compact clears it. See SetAutoCompact.
	walRows   int     // guarded by mu
	snapRows  int     // guarded by mu
	acRatio   float64 // guarded by mu
	acMinRows int     // guarded by mu
	acErr     error   // guarded by mu

	// limit > 0 bounds the number of entries (cache mode); the oldest
	// entries are evicted first.
	limit int
}

// Auto-compaction defaults: a delta-heavy workload may log the same
// mapping's rows many times over, so the write-ahead log is folded into a
// fresh snapshot once it holds 8× the rows of the last snapshot — but never
// for logs under 4096 rows, where replay is cheap and compaction churn
// would dominate.
const (
	DefaultAutoCompactRatio   = 8.0
	DefaultAutoCompactMinRows = 4096
)

// NewRepository returns an in-memory mapping repository without persistence.
func NewRepository() *Store {
	return &Store{maps: make(map[string]*mapping.Mapping), dict: model.IDs}
}

// NewCache returns a bounded in-memory store evicting oldest-first once
// more than limit mappings are held. limit <= 0 means unbounded.
func NewCache(limit int) *Store {
	return &Store{maps: make(map[string]*mapping.Mapping), dict: model.IDs, limit: limit}
}

// SetAutoCompact configures automatic write-ahead-log compaction: once the
// log holds more than ratio× the last snapshot's rows (and at least minRows
// rows), a logged write triggers Compact inline. ratio <= 0 disables
// auto-compaction; manual Compact always works. minRows <= 0 keeps the
// default floor. The defaults are DefaultAutoCompactRatio and
// DefaultAutoCompactMinRows. A write whose auto-fold fails still succeeds
// (its rows are in the log); the failure is reported by AutoCompactErr and
// stops further auto-folds until a manual Compact succeeds.
func (s *Store) SetAutoCompact(ratio float64, minRows int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.acRatio = ratio
	if minRows <= 0 {
		minRows = DefaultAutoCompactMinRows
	}
	s.acMinRows = minRows
}

// AutoCompactErr returns the error of the last failed automatic
// compaction, or nil. While non-nil, auto-compaction stands down (writes
// keep working, the log keeps growing); a successful Compact clears it.
func (s *Store) AutoCompactErr() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.acErr
}

// noteWALRowsLocked records rows appended to the log and compacts when the
// log has outgrown the snapshot. Callers hold mu and have just appended;
// the append has already succeeded, so a failed fold must not — and does
// not — propagate into the write's result.
//
//moma:locked mu
func (s *Store) noteWALRowsLocked(rows int) {
	s.walRows += rows
	if s.acRatio <= 0 || s.acErr != nil || s.walRows < s.acMinRows {
		return
	}
	base := s.snapRows
	if base < 1 {
		base = 1
	}
	if float64(s.walRows) < s.acRatio*float64(base) {
		return
	}
	if err := s.compactLocked(); err != nil {
		s.acErr = fmt.Errorf("store: auto-compact: %w", err)
	}
}

// rowsLocked counts the correspondence rows of the current state — the
// snapshot size auto-compaction compares the log against.
//
//moma:locked mu
func (s *Store) rowsLocked() int {
	n := 0
	for _, m := range s.maps {
		n += m.Len()
	}
	return n
}

// Put stores the mapping under name, replacing any previous entry. The
// mapping is stored by reference; callers must not mutate it afterwards
// (Clone first if needed).
func (s *Store) Put(name string, m *mapping.Mapping) error {
	if name == "" {
		return fmt.Errorf("store: empty mapping name")
	}
	if m == nil {
		return fmt.Errorf("store: nil mapping for %q", name)
	}
	t0 := time.Now()
	defer func() { storePutSeconds.Observe(time.Since(t0).Seconds()) }()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writableLocked(); err != nil {
		return err
	}
	// Log before mutating: a failed append leaves neither memory nor disk
	// with the mapping, so the error truly means "not recorded" — and the
	// append failure flips the store read-only (the log can no longer make
	// acknowledgements durable) until Recover re-verifies it.
	if s.wal != nil {
		if err := s.wal.logPut(name, m); err != nil {
			return s.degradeLocked("wal-append", filepath.Join(s.dir, walFile), err)
		}
	}
	if _, exists := s.maps[name]; !exists {
		s.order = append(s.order, name)
	} else {
		s.touchLocked(name)
	}
	s.maps[name] = m
	if s.wal != nil {
		s.noteWALRowsLocked(m.Len())
	}
	s.evictLocked()
	return nil
}

// touchLocked refreshes an existing entry's age: it moves to the back of
// order so a bounded cache doesn't evict a just-written hot entry as if it
// were the oldest. Callers hold mu.
//
//moma:locked mu
func (s *Store) touchLocked(name string) {
	for i, n := range s.order {
		if n == name {
			s.order = append(append(s.order[:i:i], s.order[i+1:]...), name)
			break
		}
	}
}

// PutDelta merges delta correspondences into the named mapping in place —
// AddMax per row, so a repeated pair keeps its best similarity — creating
// the mapping (with the given endpoints and type) when absent. Persistent
// stores log only the delta rows to the write-ahead log, inside the same
// critical section as the in-memory mutation: the online resolution path
// records each arrival's same-mapping delta through this entry point, so a
// crash replay reconstructs exactly the deltas that were acknowledged, and
// the log grows with the deltas instead of rewriting the full mapping per
// arrival (which is what Put does).
func (s *Store) PutDelta(name string, dom, rng model.LDS, mtype model.MappingType, rows []mapping.Correspondence) error {
	if name == "" {
		return fmt.Errorf("store: empty mapping name")
	}
	if len(rows) == 0 {
		return nil
	}
	t0 := time.Now()
	defer func() { storeDeltaSeconds.Observe(time.Since(t0).Seconds()) }()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writableLocked(); err != nil {
		return err
	}
	m, exists := s.maps[name]
	if exists {
		dom, rng, mtype = m.Domain(), m.Range(), m.Type()
	}
	// Log before mutating: a failed append then leaves neither memory nor
	// disk with the rows, so the caller's error truly means "not recorded"
	// and a later crash replay cannot disagree with what was served. The
	// failure also degrades the store: acknowledged writes can no longer be
	// made durable until Recover re-verifies the log.
	if s.wal != nil {
		rec := walRecord{
			Op:     "add",
			Name:   name,
			Domain: dom.String(),
			Range:  rng.String(),
			Type:   string(mtype),
		}
		for _, c := range rows {
			rec.Rows = append(rec.Rows, corrRecord{D: string(c.Domain), R: string(c.Range), S: c.Sim})
		}
		if err := s.wal.append(rec); err != nil {
			return s.degradeLocked("wal-append", filepath.Join(s.dir, walFile), err)
		}
	}
	if !exists {
		m = mapping.NewWithDict(dom, rng, mtype, s.dict)
		s.maps[name] = m
		s.order = append(s.order, name)
	} else {
		// Like Put, writing refreshes the entry's age in cache mode.
		s.touchLocked(name)
	}
	for _, c := range rows {
		m.AddMax(c.Domain, c.Range, c.Sim)
	}
	s.evictLocked()
	if s.wal != nil {
		s.noteWALRowsLocked(len(rows))
	}
	return nil
}

// DropTouching removes every correspondence touching id from the named
// mapping in place, reporting how many rows went away. A missing mapping or
// an id with no correspondences is a no-op — nothing is logged, so the
// common serve-path case (removing an instance that never matched) costs
// two posting probes and zero log growth. Persistent stores log a compact
// "drop" record — O(1) bytes instead of Put's full-table rewrite — before
// mutating, and degrade on an append failure like every other mutation.
func (s *Store) DropTouching(name string, id model.ID) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writableLocked(); err != nil {
		return 0, err
	}
	m, ok := s.maps[name]
	if !ok || !m.Touches(id) {
		return 0, nil
	}
	if s.wal != nil {
		if err := s.wal.logDrop(name, id); err != nil {
			return 0, s.degradeLocked("wal-append", filepath.Join(s.dir, walFile), err)
		}
	}
	removed := m.RemoveTouching(id)
	if s.wal != nil {
		s.noteWALRowsLocked(1)
	}
	return removed, nil
}

// evictLocked drops oldest entries beyond the limit. Callers hold mu.
//
//moma:locked mu
func (s *Store) evictLocked() {
	if s.limit <= 0 {
		return
	}
	for len(s.order) > s.limit {
		victim := s.order[0]
		s.order = s.order[1:]
		delete(s.maps, victim)
		if s.wal != nil {
			// Eviction must proceed regardless (it bounds memory), but a
			// failed delete record means replay would resurrect the victim —
			// that is a durability fault, so the store degrades.
			if err := s.wal.logDelete(victim); err != nil {
				_ = s.degradeLocked("wal-append", filepath.Join(s.dir, walFile), err)
			}
		}
	}
}

// Get returns the mapping stored under name.
func (s *Store) Get(name string) (*mapping.Mapping, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.maps[name]
	return m, ok
}

// MustGet returns the named mapping or an error mentioning close names.
func (s *Store) MustGet(name string) (*mapping.Mapping, error) {
	if m, ok := s.Get(name); ok {
		return m, nil
	}
	names := s.Names()
	var hints []string
	lower := strings.ToLower(name)
	for _, n := range names {
		if strings.Contains(strings.ToLower(n), lower) || strings.Contains(lower, strings.ToLower(n)) {
			hints = append(hints, n)
		}
	}
	if len(hints) > 0 {
		return nil, fmt.Errorf("store: no mapping %q (close: %s)", name, strings.Join(hints, ", "))
	}
	return nil, fmt.Errorf("store: no mapping %q among %d stored mappings", name, len(names))
}

// Delete removes the named mapping; it reports whether it existed. Like
// every mutation it logs before touching memory, degrades the store on an
// append failure, and is rejected while degraded.
func (s *Store) Delete(name string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writableLocked(); err != nil {
		return false, err
	}
	if _, ok := s.maps[name]; !ok {
		return false, nil
	}
	if s.wal != nil {
		if err := s.wal.logDelete(name); err != nil {
			return false, s.degradeLocked("wal-append", filepath.Join(s.dir, walFile), err)
		}
	}
	delete(s.maps, name)
	for i, n := range s.order {
		if n == name {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	if s.wal != nil {
		s.noteWALRowsLocked(1)
	}
	return true, nil
}

// Has reports whether a mapping is stored under name.
func (s *Store) Has(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.maps[name]
	return ok
}

// Len returns the number of stored mappings.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.maps)
}

// Names returns the stored names in insertion order.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// SameMappingsBetween returns the names of stored same-mappings connecting
// the two logical sources (in either direction).
func (s *Store) SameMappingsBetween(a, b model.LDS) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for _, n := range s.order {
		m := s.maps[n]
		if !m.IsSame() {
			continue
		}
		if (m.Domain() == a && m.Range() == b) || (m.Domain() == b && m.Range() == a) {
			out = append(out, n)
		}
	}
	return out
}

// Clear removes all mappings. On a persistent store each removal is logged
// first; an append failure degrades the store and stops the clear with the
// already-logged prefix removed (memory and log stay in agreement).
func (s *Store) Clear() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writableLocked(); err != nil {
		return err
	}
	cleared := 0
	for _, n := range s.order {
		if s.wal != nil {
			if err := s.wal.logDelete(n); err != nil {
				s.order = s.order[cleared:]
				return s.degradeLocked("wal-append", filepath.Join(s.dir, walFile), err)
			}
		}
		delete(s.maps, n)
		cleared++
	}
	s.order = s.order[:0]
	return nil
}

// Stats summarizes the store for reports.
type Stats struct {
	Mappings        int
	Correspondences int
	SameMappings    int
}

// Summarize computes store statistics.
func (s *Store) Summarize() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{Mappings: len(s.maps)}
	for _, m := range s.maps {
		st.Correspondences += m.Len()
		if m.IsSame() {
			st.SameMappings++
		}
	}
	return st
}

// String lists the store contents.
func (s *Store) String() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, len(s.order))
	copy(names, s.order)
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "store with %d mappings:\n", len(names))
	for _, n := range names {
		m := s.maps[n]
		fmt.Fprintf(&b, "  %-32s %s -> %s (%s), %d corrs\n", n, m.Domain(), m.Range(), m.Type(), m.Len())
	}
	return b.String()
}
