package store

import "repro/internal/obs"

// Engine-side repository metrics, registered once at package init on the
// process-global registry. Durations cover the whole entry point — lock
// wait, WAL append and eviction included — because that is the latency a
// serving handler actually pays.
var (
	storePutSeconds = obs.Default.Histogram("moma_store_put_seconds",
		"Latency of Store.Put (full-mapping store).", nil)
	storeDeltaSeconds = obs.Default.Histogram("moma_store_delta_seconds",
		"Latency of Store.PutDelta (logged delta merge).", nil)
	storeCompactionSeconds = obs.Default.Histogram("moma_store_compaction_seconds",
		"Latency of a snapshot compaction.", nil)
	storeCompactions = obs.Default.Counter("moma_store_compactions_total",
		"Completed snapshot compactions (manual and automatic).")
	storeWALBytes = obs.Default.Counter("moma_store_wal_bytes_total",
		"Bytes appended to the write-ahead log (newlines included).")
	storeWALRecords = obs.Default.Counter("moma_store_wal_records_total",
		"Records appended to the write-ahead log.")
	storeFsyncs = obs.Default.Counter("moma_store_fsyncs_total",
		"File syncs issued (snapshot commit points).")
	storeSnapshotBytes = obs.Default.Gauge("moma_store_snapshot_bytes",
		"Size in bytes of the last snapshot written by compaction.")
	storeDegraded = obs.Default.Gauge("moma_store_degraded",
		"1 while the store is in read-only degraded mode, 0 while healthy.")
	storeDegradations = obs.Default.Counter("moma_store_degradations_total",
		"Transitions into read-only degraded mode (write-path I/O faults).")
)
