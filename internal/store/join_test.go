package store

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/mapping"
	"repro/internal/model"
)

func joinFixture() (*mapping.Mapping, *mapping.Mapping) {
	m1 := mapping.NewSame(dblpPub, gsPub)
	m1.Add("a1", "c1", 0.9)
	m1.Add("a1", "c2", 0.8)
	m1.Add("a2", "c2", 0.7)
	m1.Add("a3", "c9", 0.5) // dangling: c9 not in m2
	m2 := mapping.NewSame(gsPub, acmPub)
	m2.Add("c1", "b1", 1)
	m2.Add("c2", "b1", 0.6)
	m2.Add("c2", "b2", 0.4)
	m2.Add("c8", "b3", 1) // dangling: c8 not in m1
	return m1, m2
}

func TestJoinAlgorithmsAgree(t *testing.T) {
	m1, m2 := joinFixture()
	h, err := Join(m1, m2, HashJoin)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Join(m1, m2, SortMergeJoin)
	if err != nil {
		t.Fatal(err)
	}
	SortRows(h)
	SortRows(s)
	if !reflect.DeepEqual(h, s) {
		t.Errorf("join outputs differ:\nhash: %v\nsort-merge: %v", h, s)
	}
	// a1c1b1, a1c2b1, a1c2b2, a2c2b1, a2c2b2 = 5 rows.
	if len(h) != 5 {
		t.Errorf("join rows = %d, want 5", len(h))
	}
}

func TestJoinMiddleMismatch(t *testing.T) {
	m1 := mapping.NewSame(dblpPub, gsPub)
	m2 := mapping.NewSame(dblpPub, acmPub)
	if _, err := Join(m1, m2, HashJoin); err == nil {
		t.Error("mismatched middle sources should fail")
	}
	if _, err := Join(m1, mapping.NewSame(gsPub, acmPub), JoinAlgorithm(9)); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestJoinEmptyInputs(t *testing.T) {
	m1 := mapping.NewSame(dblpPub, gsPub)
	m2 := mapping.NewSame(gsPub, acmPub)
	for _, alg := range []JoinAlgorithm{HashJoin, SortMergeJoin} {
		rows, err := Join(m1, m2, alg)
		if err != nil || len(rows) != 0 {
			t.Errorf("%s on empty inputs: %v, %v", alg, rows, err)
		}
	}
}

func TestComposeViaMatchesMappingCompose(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m1 := mapping.NewSame(dblpPub, gsPub)
	m2 := mapping.NewSame(gsPub, acmPub)
	for i := 0; i < 300; i++ {
		m1.Add(model.ID(fmt.Sprintf("a%d", rng.Intn(40))), model.ID(fmt.Sprintf("c%d", rng.Intn(60))), rng.Float64())
		m2.Add(model.ID(fmt.Sprintf("c%d", rng.Intn(60))), model.ID(fmt.Sprintf("b%d", rng.Intn(40))), rng.Float64())
	}
	combos := []struct {
		f mapping.Combiner
		g mapping.PathAgg
	}{
		{mapping.MinCombiner, mapping.AggRelative},
		{mapping.MinCombiner, mapping.AggAvg},
		{mapping.AvgCombiner, mapping.AggMax},
		{mapping.MaxCombiner, mapping.AggMin},
		{mapping.MinCombiner, mapping.AggRelativeLeft},
		{mapping.MinCombiner, mapping.AggRelativeRight},
	}
	for _, combo := range combos {
		want, err := mapping.Compose(m1, m2, combo.f, combo.g)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range []JoinAlgorithm{HashJoin, SortMergeJoin} {
			got, err := ComposeVia(m1, m2, combo.f, combo.g, alg)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want, 1e-12) {
				t.Errorf("ComposeVia(%s, f=%v, g=%v) differs from mapping.Compose", alg, combo.f.Kind, combo.g)
			}
		}
	}
}

func TestComposeViaTypePropagation(t *testing.T) {
	m1, m2 := joinFixture()
	got, err := ComposeVia(m1, m2, mapping.MinCombiner, mapping.AggMax, SortMergeJoin)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsSame() {
		t.Error("same ∘ same should stay a same-mapping")
	}
	if _, err := ComposeVia(m1, m2, mapping.MinCombiner, mapping.PathAgg(99), HashJoin); err == nil {
		t.Error("unknown aggregation should fail")
	}
}

func TestJoinAlgorithmString(t *testing.T) {
	if HashJoin.String() != "hash" || SortMergeJoin.String() != "sort-merge" {
		t.Error("algorithm names wrong")
	}
	if JoinAlgorithm(9).String() == "" {
		t.Error("unknown algorithm should render")
	}
}
