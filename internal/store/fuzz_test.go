package store

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/mapping"
	"repro/internal/model"
)

// walFixture builds a realistic log through the public API — put, delta
// merge, delete, auto-compaction bookkeeping — and returns the raw bytes of
// the resulting wal file. Fuzz seeds grown this way exercise the same
// record shapes production writes.
func walFixture(f *testing.F) []byte {
	f.Helper()
	dir := f.TempDir()
	s, err := OpenRepository(dir)
	if err != nil {
		f.Fatal(err)
	}
	if err := s.Put("pubs", sampleMapping(5)); err != nil {
		f.Fatal(err)
	}
	if err := s.PutDelta("live.pubs", dblpPub, acmPub, model.SameMappingType, []mapping.Correspondence{
		{Domain: "a", Range: "B", Sim: 0.9},
		{Domain: "c", Range: "D", Sim: 0.75},
	}); err != nil {
		f.Fatal(err)
	}
	s.Put("dropme", sampleMapping(2))
	s.Delete("dropme")
	if err := s.Close(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// replay loads the byte slice as a wal file in a fresh directory and
// returns the opened store (nil on replay error).
func replay(t *testing.T, data []byte) (*Store, error) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walFile), data, 0o644); err != nil {
		t.Fatal(err)
	}
	return OpenRepository(dir)
}

// FuzzWALReplay feeds arbitrary bytes to the wal replay path. Properties:
// replay never panics; a replayable log is deterministic (two replays agree
// on names and row counts); and a torn trailing write — any partial last
// line without its newline — is detected and dropped without touching the
// intact prefix.
func FuzzWALReplay(f *testing.F) {
	f.Add(walFixture(f))
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"op":"put","name":"m","domain":"publication@A","range":"publication@B","type":"same","rows":[{"d":"x","r":"y","s":0.5}]}` + "\n"))
	f.Add([]byte(`{"op":"add","name":"m","domain":"publication@A","range":"publication@B","type":"same","rows":[{"d":"x","r":"y","s":1}]}` + "\n"))
	f.Add([]byte(`{"op":"del","name":"m"}` + "\n"))
	f.Add([]byte(`{"op":"noop"}` + "\n")) // Recover's write-path probe
	f.Add([]byte(`{"op":"noop"}` + "\n" + `{"op":"put","name":"m","domain":"publication@A","range":"publication@B","type":"same","rows":[{"d":"x","r":"y","s":0.5}]}` + "\n"))
	f.Add([]byte(`{"op":"frobnicate","name":"m"}` + "\n"))                                               // unknown op
	f.Add([]byte(`{"op":"put","name":"m","domain":"not-an-lds"}` + "\n"))                                // bad LDS
	f.Add([]byte(`{"op":"put","na`))                                                                     // torn first line
	f.Add([]byte(`{"op":"del","name":"m"}` + "\n" + `{"op":"put","name":"q","dom`))                      // torn tail
	f.Add([]byte("{\"op\":\"del\",\"name\":\"m\"}\nnot json at all\n{\"op\":\"del\",\"name\":\"m\"}\n")) // corruption mid-log
	f.Add([]byte{0x00, 0xff, '\n'})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := replay(t, data) // must not panic, whatever the bytes
		if err != nil {
			return
		}
		names := s.Names()
		rows := storeRows(s)
		s.Close()

		// Replay is a pure function of the bytes.
		s2, err := replay(t, data)
		if err != nil {
			t.Fatalf("second replay of accepted bytes failed: %v", err)
		}
		if got := s2.Names(); !equalStrings(got, names) {
			t.Fatalf("replay nondeterministic: names %v then %v", names, got)
		}
		if got := storeRows(s2); got != rows {
			t.Fatalf("replay nondeterministic: %d rows then %d", rows, got)
		}
		s2.Close()

		// A torn trailing write must be tolerated and must not change the
		// replayed state. Two preconditions: the log must end in a newline
		// (garbage after an unterminated last line merges with that line
		// instead of forming a torn record of its own), and every existing
		// line must be a valid record — a corrupt FINAL line is itself
		// tolerated as torn, so "replays OK" alone is not enough; probe by
		// appending a benign no-op record, which turns latent last-line
		// corruption into a replay error.
		if len(data) > 0 && data[len(data)-1] == '\n' {
			probe := append(append([]byte{}, data...), []byte(`{"op":"del","name":"fuzz-probe-nonexistent"}`+"\n")...)
			sp, err := replay(t, probe)
			if err != nil {
				return
			}
			sp.Close()
			torn := append(append([]byte{}, data...), []byte(`{"op":"put","name":"torn","domain":`)...)
			s3, err := replay(t, torn)
			if err != nil {
				t.Fatalf("torn tail not tolerated: %v", err)
			}
			if got := s3.Names(); !equalStrings(got, names) {
				t.Fatalf("torn tail changed state: names %v, want %v", got, names)
			}
			if got := storeRows(s3); got != rows {
				t.Fatalf("torn tail changed state: %d rows, want %d", got, rows)
			}
			s3.Close()
		}
	})
}

// storeRows sums the mapping lengths — a cheap state fingerprint.
func storeRows(s *Store) int {
	total := 0
	for _, name := range s.Names() {
		if m, ok := s.Get(name); ok {
			total += m.Len()
		}
	}
	return total
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]string{}, a...)
	bs := append([]string{}, b...)
	sort.Strings(as)
	sort.Strings(bs)
	return strings.Join(as, "\x00") == strings.Join(bs, "\x00")
}
