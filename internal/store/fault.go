package store

// Failure semantics of the persistence layer. Every write-path I/O failure
// surfaces as a typed *StorageError naming the operation and path that
// failed; a failure on the acknowledged-write path (a WAL append)
// additionally transitions the store into a read-only degraded state:
// queries keep answering from memory, mutations fail fast with the cause,
// and an explicit Recover re-verifies the log before lifting the
// degradation. Compaction failures never degrade — the log that made the
// triggering write durable is intact — and never publish a partial
// snapshot (the tmp file is synced before the atomic rename and removed on
// every error path).

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// ErrDegraded is matched (errors.Is) by every mutation rejected because
// the store is in read-only degraded mode. The concrete error also unwraps
// to the *StorageError that caused the degradation.
var ErrDegraded = errors.New("store: degraded (read-only)")

// StorageError is a typed persistence failure: the logical operation
// ("wal-append", "wal-truncate", "snapshot-write", "snapshot-sync",
// "snapshot-rename"), the file involved, and the underlying cause.
type StorageError struct {
	Op   string // logical write site
	Path string // file the operation targeted
	Err  error  // underlying cause
}

func (e *StorageError) Error() string {
	return fmt.Sprintf("store: %s %s: %v", e.Op, e.Path, e.Err)
}

func (e *StorageError) Unwrap() error { return e.Err }

// degradedError is what mutations return while the store is degraded:
// errors.Is(err, ErrDegraded) holds and the chain unwraps to the causing
// *StorageError.
type degradedError struct{ cause error }

func (e *degradedError) Error() string {
	return "store: degraded (read-only), mutation rejected; cause: " + e.cause.Error()
}

func (e *degradedError) Unwrap() error { return e.cause }

// Is matches the ErrDegraded sentinel.
func (e *degradedError) Is(target error) bool { return target == ErrDegraded }

// Degraded returns the *StorageError that transitioned the store into
// read-only degraded mode, or nil while the store is healthy. While
// degraded, reads (Get, Names, Summarize, ...) keep working and every
// mutation fails fast with an error matching ErrDegraded.
func (s *Store) Degraded() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.degraded
}

// writableLocked rejects mutations while degraded. Callers hold mu.
//
//moma:locked mu
func (s *Store) writableLocked() error {
	if s.degraded == nil {
		return nil
	}
	return &degradedError{cause: s.degraded}
}

// degradeLocked records a failed acknowledged-write-path operation: the
// store transitions to read-only degraded mode and the typed error is
// returned for the caller to surface. Callers hold mu.
//
//moma:locked mu
func (s *Store) degradeLocked(op, path string, err error) error {
	serr := &StorageError{Op: op, Path: path, Err: err}
	if s.degraded == nil {
		s.degraded = serr
		storeDegraded.Set(1)
		storeDegradations.Inc()
	}
	return serr
}

// Recover re-verifies a degraded store's write path and lifts the
// degradation on success: the write-ahead log is truncated back to its
// durable prefix (removing any torn bytes of the failed append), reopened,
// and probed with a no-op record through the same append-and-flush path
// that failed. On failure the store stays degraded and the typed error is
// returned; Recover may be retried. A healthy store returns nil.
func (s *Store) Recover() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.degraded == nil {
		return nil
	}
	if s.wal == nil {
		// An in-memory store cannot stay degraded: nothing is persisted, so
		// there is nothing to re-verify.
		s.clearDegradedLocked()
		return nil
	}
	path := filepath.Join(s.dir, walFile)
	// Drop the wounded writer. Its buffered bytes are the tail of the
	// failed record; the durable prefix is what the truncate below keeps.
	// (A retried Recover finds f already nil.)
	if s.wal.f != nil {
		_ = s.wal.f.Close() //moma:errsink-ok wounded fd being discarded; the durable prefix is re-verified below
		s.wal.f = nil
	}
	durable := s.wal.durable
	if err := s.fsys.Truncate(path, durable); err != nil {
		return &StorageError{Op: "wal-truncate", Path: path, Err: err}
	}
	f, err := s.fsys.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return &StorageError{Op: "wal-open", Path: path, Err: err}
	}
	w := &walWriter{f: f, w: bufio.NewWriter(f), durable: durable}
	s.wal = w // even on probe failure: the handle is the freshest state for a retry
	if err := w.append(walRecord{Op: "noop"}); err != nil {
		return &StorageError{Op: "wal-append", Path: path, Err: err}
	}
	s.clearDegradedLocked()
	return nil
}

// clearDegradedLocked lifts the degradation. Callers hold mu.
//
//moma:locked mu
func (s *Store) clearDegradedLocked() {
	s.degraded = nil
	storeDegraded.Set(0)
}
