package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/faultfs"
	"repro/internal/mapping"
	"repro/internal/model"
)

// Persistence: a persistent Store is backed by a directory holding a
// snapshot file plus a write-ahead log of JSON records. On open, the
// snapshot is loaded and the log replayed; Compact folds the log into a
// fresh snapshot. JSON-lines records keep the log append-safe across
// process restarts (unlike a single gob stream).
//
// All filesystem access goes through a faultfs.FS seam: production stores
// use the OS passthrough, tests and chaos harnesses inject scripted
// failures (OpenRepositoryFS). A record is durable if and only if it is
// newline-terminated and parseable on disk — replay drops a torn tail, and
// open repairs the log file to that durable prefix before appending, so a
// crash mid-append can never merge the next record into torn garbage.

const (
	snapshotFile = "snapshot.jsonl"
	walFile      = "wal.jsonl"
)

// walRecord is one persisted operation. "put" replaces a whole mapping,
// "add" merges delta rows (AddMax) into an existing or fresh mapping, "drop"
// removes every correspondence touching one instance id, "del" removes a
// whole mapping, "noop" does nothing (Recover's write-path probe).
type walRecord struct {
	Op     string       `json:"op"` // "put", "add", "drop", "del" or "noop"
	Name   string       `json:"name,omitempty"`
	ID     string       `json:"id,omitempty"` // "drop": the touched instance
	Domain string       `json:"domain,omitempty"`
	Range  string       `json:"range,omitempty"`
	Type   string       `json:"type,omitempty"`
	Rows   []corrRecord `json:"rows,omitempty"`
}

// corrRecord is one persisted correspondence.
type corrRecord struct {
	D string  `json:"d"`
	R string  `json:"r"`
	S float64 `json:"s"`
}

type walWriter struct {
	f faultfs.File
	w *bufio.Writer
	// durable is the byte offset of the end of the last fully flushed
	// record: everything at or past it is the torn tail of a failed append,
	// and Recover truncates the file back to it.
	durable int64
}

func (w *walWriter) append(rec walRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := w.w.Write(data); err != nil {
		return err
	}
	if err := w.w.WriteByte('\n'); err != nil {
		return err
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	w.durable += int64(len(data)) + 1
	storeWALBytes.Add(uint64(len(data)) + 1)
	storeWALRecords.Inc()
	return nil
}

func (w *walWriter) logPut(name string, m *mapping.Mapping) error {
	return w.append(putRecord(name, m))
}

func (w *walWriter) logDelete(name string) error {
	return w.append(walRecord{Op: "del", Name: name})
}

func (w *walWriter) logDrop(name string, id model.ID) error {
	return w.append(walRecord{Op: "drop", Name: name, ID: string(id)})
}

// close flushes and closes the log file. Both errors are durability
// signals: a flush failure means buffered records never reached the kernel,
// and a close failure can surface a deferred write-back error — the flush
// error wins when both fail, but neither is dropped.
func (w *walWriter) close() error {
	if w.f == nil {
		// A degraded store whose Recover got as far as dropping the wounded
		// fd: nothing left to flush or close.
		return nil
	}
	flushErr := w.w.Flush()
	closeErr := w.f.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// putRecord serializes a mapping straight from its columns: rows stream
// through EachOrd and resolve ordinals against the dictionary's id table —
// no []Correspondence copy of the whole table is ever materialized.
func putRecord(name string, m *mapping.Mapping) walRecord {
	rec := walRecord{
		Op:     "put",
		Name:   name,
		Domain: m.Domain().String(),
		Range:  m.Range().String(),
		Type:   string(m.Type()),
	}
	rec.Rows = make([]corrRecord, 0, m.Len())
	ids := m.Dict().All()
	m.EachOrd(func(d, r uint32, s float64) bool {
		rec.Rows = append(rec.Rows, corrRecord{D: string(ids[d]), R: string(ids[r]), S: s})
		return true
	})
	return rec
}

// mappingFromRecord materializes a replayed mapping interning through the
// store's dictionary. Ordinals never hit the disk format — records carry id
// strings, so a snapshot replays correctly into any dictionary.
func (s *Store) mappingFromRecord(rec walRecord) (*mapping.Mapping, error) {
	dom, err := model.ParseLDS(rec.Domain)
	if err != nil {
		return nil, fmt.Errorf("store: record %q: %w", rec.Name, err)
	}
	rng, err := model.ParseLDS(rec.Range)
	if err != nil {
		return nil, fmt.Errorf("store: record %q: %w", rec.Name, err)
	}
	m := mapping.NewWithDict(dom, rng, model.MappingType(rec.Type), s.dict)
	for _, row := range rec.Rows {
		m.Add(model.ID(row.D), model.ID(row.R), row.S)
	}
	return m, nil
}

// OpenRepository opens (creating if necessary) a persistent repository in
// dir. The snapshot is loaded first, then the write-ahead log is replayed.
// The repository owns a private ID dictionary: replayed mappings intern
// into it, so closing the last reference to the store releases that
// vocabulary instead of growing the process-global model.IDs with every
// mapping ever persisted. Auto-compaction is on at the documented defaults
// (SetAutoCompact).
func OpenRepository(dir string) (*Store, error) {
	return OpenRepositoryFS(dir, faultfs.OS{})
}

// OpenRepositoryFS is OpenRepository with every filesystem operation routed
// through fsys — the injection seam the crash matrix and chaos harness use
// (faultfs.Injector); nil means the OS passthrough. Before the log is
// opened for appending, any torn tail (unterminated or unparseable final
// record — the residue of a crash mid-append) is truncated away so later
// appends can never merge into it.
//
//moma:guardedby-ok construct-then-publish: the store is not shared until OpenRepositoryFS returns
func OpenRepositoryFS(dir string, fsys faultfs.FS) (*Store, error) {
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	s := NewRepository()
	s.dict = model.NewIDDict()
	s.fsys = fsys
	s.acRatio = DefaultAutoCompactRatio
	s.acMinRows = DefaultAutoCompactMinRows
	snap, err := s.replayFile(filepath.Join(dir, snapshotFile))
	if err != nil {
		return nil, err
	}
	walPath := filepath.Join(dir, walFile)
	wal, err := s.replayFile(walPath)
	if err != nil {
		return nil, err
	}
	s.snapRows, s.walRows = snap.rows, wal.rows
	if wal.durable < wal.size {
		// Torn tail repair: drop the bytes of the record(s) that never
		// became durable, so the next append starts on a record boundary.
		if err := fsys.Truncate(walPath, wal.durable); err != nil {
			return nil, &StorageError{Op: "wal-truncate", Path: walPath, Err: err}
		}
	}
	f, err := fsys.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open wal: %w", err)
	}
	s.wal = &walWriter{f: f, w: bufio.NewWriter(f), durable: wal.durable}
	s.dir = dir
	return s, nil
}

// replayState reports one replayed file: applied correspondence rows, the
// byte offset just past the last durable (newline-terminated, parseable,
// applied) record, and the file size scanned.
type replayState struct {
	rows    int
	durable int64
	size    int64
}

// replayFile applies all records of a snapshot or log file; a missing file
// is fine. A corrupt or unterminated trailing record (torn write) is
// tolerated — dropped without being applied — but corruption followed by
// further data is an error: that is real damage, not a crash artifact.
//
//moma:guardedby-ok called only from OpenRepositoryFS, before the store is published to any other goroutine
func (s *Store) replayFile(path string) (replayState, error) {
	var st replayState
	f, err := s.fsys.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return st, nil
		}
		return st, fmt.Errorf("store: open %s: %w", path, err)
	}
	defer f.Close() //moma:errsink-ok read-only replay fd, nothing buffered to lose
	r := bufio.NewReaderSize(f, 1<<20)
	lineNo := 0
	var pendingErr error
	for {
		line, readErr := r.ReadBytes('\n')
		if readErr != nil && readErr != io.EOF {
			return st, fmt.Errorf("store: scan %s: %w", path, readErr)
		}
		terminated := len(line) > 0 && line[len(line)-1] == '\n'
		st.size += int64(len(line))
		if len(line) > 0 {
			lineNo++
			if pendingErr != nil {
				// A corrupt record followed by more data is real corruption.
				return st, pendingErr
			}
			body := line
			if terminated {
				body = line[:len(line)-1]
			}
			switch {
			case len(body) == 0:
				// Blank line: tolerated, and safe to append after.
				st.durable = st.size
			case !terminated:
				// An unterminated final record never finished its append —
				// the flush that would have acknowledged it includes the
				// newline — so it is torn even if it happens to parse.
				pendingErr = fmt.Errorf("store: %s line %d: torn unterminated record", path, lineNo)
			default:
				if rows, err := s.applyRecord(path, lineNo, body); err != nil {
					pendingErr = err
				} else {
					st.rows += rows
					st.durable = st.size
				}
			}
		}
		if readErr == io.EOF {
			// pendingErr on the very last line is a torn write: dropped, the
			// durable prefix before it intact.
			return st, nil
		}
	}
}

// applyRecord parses and applies one replayed line, returning the number
// of correspondence rows it contributed (what auto-compaction accounting
// counts). Unparseable lines and unknown ops return an error the caller
// treats as torn-if-final.
//
//moma:guardedby-ok called only during OpenRepositoryFS replay, before the store is published
func (s *Store) applyRecord(path string, lineNo int, body []byte) (int, error) {
	var rec walRecord
	if err := json.Unmarshal(body, &rec); err != nil {
		return 0, fmt.Errorf("store: %s line %d: %w", path, lineNo, err)
	}
	switch rec.Op {
	case "put":
		m, err := s.mappingFromRecord(rec)
		if err != nil {
			return 0, err
		}
		if _, exists := s.maps[rec.Name]; !exists {
			s.order = append(s.order, rec.Name)
		}
		s.maps[rec.Name] = m
		return len(rec.Rows), nil
	case "add":
		m, exists := s.maps[rec.Name]
		if !exists {
			empty := rec
			empty.Rows = nil
			var err error
			if m, err = s.mappingFromRecord(empty); err != nil {
				return 0, err
			}
			s.maps[rec.Name] = m
			s.order = append(s.order, rec.Name)
		}
		for _, row := range rec.Rows {
			m.AddMax(model.ID(row.D), model.ID(row.R), row.S)
		}
		return len(rec.Rows), nil
	case "drop":
		if m, ok := s.maps[rec.Name]; ok {
			m.RemoveTouching(model.ID(rec.ID))
		}
		return 1, nil
	case "del":
		if _, ok := s.maps[rec.Name]; ok {
			delete(s.maps, rec.Name)
			for i, n := range s.order {
				if n == rec.Name {
					s.order = append(s.order[:i], s.order[i+1:]...)
					break
				}
			}
		}
		return 1, nil
	case "noop":
		// Recover's write-path probe: durable, applies nothing.
		return 0, nil
	default:
		return 0, fmt.Errorf("store: %s line %d: unknown op %q", path, lineNo, rec.Op)
	}
}

// Compact folds the current state into a fresh snapshot and truncates the
// write-ahead log. Only valid for stores opened with OpenRepository.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writableLocked(); err != nil {
		// A degraded store's log handle is wounded; Recover first.
		return err
	}
	return s.compactLocked()
}

// compactLocked is Compact under a held write lock — auto-compaction calls
// it from inside logged writes. Every failure path removes the tmp file
// and leaves the current snapshot, log and writer untouched: a partial
// snapshot is never published (the tmp is fsynced before the atomic
// rename), and a failed compaction never wedges subsequent writes.
//
//moma:locked mu
func (s *Store) compactLocked() error {
	if s.wal == nil || s.dir == "" {
		return fmt.Errorf("store: Compact requires a persistent repository")
	}
	t0 := time.Now()
	snapPath := filepath.Join(s.dir, snapshotFile)
	tmp, err := s.fsys.CreateTemp(s.dir, "snapshot-*.tmp")
	if err != nil {
		return &StorageError{Op: "snapshot-create", Path: snapPath, Err: err}
	}
	cw := &countingWriter{w: tmp}
	w := bufio.NewWriter(cw)
	enc := json.NewEncoder(w)
	for _, name := range s.order {
		if err := enc.Encode(putRecord(name, s.maps[name])); err != nil {
			tmp.Close()               //moma:errsink-ok error path; the encode error wins and the tmp file is removed
			s.fsys.Remove(tmp.Name()) //moma:errsink-ok best-effort rollback of an unpublished tmp file
			return &StorageError{Op: "snapshot-write", Path: tmp.Name(), Err: err}
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()               //moma:errsink-ok error path; the flush error wins and the tmp file is removed
		s.fsys.Remove(tmp.Name()) //moma:errsink-ok best-effort rollback of an unpublished tmp file
		return &StorageError{Op: "snapshot-write", Path: tmp.Name(), Err: err}
	}
	// Sync before the rename: the rename is the commit point, and a crash
	// between rename and write-back would otherwise publish a snapshot whose
	// bytes never reached the disk.
	if err := tmp.Sync(); err != nil {
		tmp.Close()               //moma:errsink-ok error path; the sync error wins and the tmp file is removed
		s.fsys.Remove(tmp.Name()) //moma:errsink-ok best-effort rollback of an unpublished tmp file
		return &StorageError{Op: "snapshot-sync", Path: tmp.Name(), Err: err}
	}
	storeFsyncs.Inc()
	if err := tmp.Close(); err != nil {
		s.fsys.Remove(tmp.Name()) //moma:errsink-ok best-effort rollback of an unpublished tmp file
		return &StorageError{Op: "snapshot-close", Path: tmp.Name(), Err: err}
	}
	if err := s.fsys.Rename(tmp.Name(), snapPath); err != nil {
		s.fsys.Remove(tmp.Name()) //moma:errsink-ok best-effort rollback of an unpublished tmp file
		return &StorageError{Op: "snapshot-rename", Path: snapPath, Err: err}
	}
	// Swap in a truncated log: flush the old writer, open the new one, and
	// only then drop the old fd. Every failure path before the swap leaves
	// s.wal usable, so a failed compaction — which auto-compaction may hit
	// on any logged write — never wedges subsequent writes; the snapshot
	// just renamed is a superset of the surviving log, and replaying both
	// in order converges to the same state.
	walPath := filepath.Join(s.dir, walFile)
	if err := s.wal.w.Flush(); err != nil {
		return &StorageError{Op: "wal-flush", Path: walPath, Err: err}
	}
	f, err := s.fsys.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return &StorageError{Op: "wal-truncate", Path: walPath, Err: err}
	}
	_ = s.wal.f.Close() //moma:errsink-ok old fd already flushed above; the truncated file replaces it
	s.wal = &walWriter{f: f, w: bufio.NewWriter(f)}
	s.snapRows = s.rowsLocked()
	s.walRows = 0
	s.acErr = nil
	storeCompactions.Inc()
	storeCompactionSeconds.Observe(time.Since(t0).Seconds())
	storeSnapshotBytes.Set(cw.n)
	return nil
}

// countingWriter counts bytes on their way to the snapshot file, so
// compaction can report the snapshot size without a second stat.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Close flushes and closes the write-ahead log of a persistent repository;
// it is a no-op for in-memory stores.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.wal.close()
	s.wal = nil
	return err
}
