package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/mapping"
	"repro/internal/model"
)

// Persistence: a persistent Store is backed by a directory holding a
// snapshot file plus a write-ahead log of JSON records. On open, the
// snapshot is loaded and the log replayed; Compact folds the log into a
// fresh snapshot. JSON-lines records keep the log append-safe across
// process restarts (unlike a single gob stream).

const (
	snapshotFile = "snapshot.jsonl"
	walFile      = "wal.jsonl"
)

// walRecord is one persisted operation. "put" replaces a whole mapping,
// "add" merges delta rows (AddMax) into an existing or fresh mapping, "del"
// removes one.
type walRecord struct {
	Op     string       `json:"op"` // "put", "add" or "del"
	Name   string       `json:"name"`
	Domain string       `json:"domain,omitempty"`
	Range  string       `json:"range,omitempty"`
	Type   string       `json:"type,omitempty"`
	Rows   []corrRecord `json:"rows,omitempty"`
}

// corrRecord is one persisted correspondence.
type corrRecord struct {
	D string  `json:"d"`
	R string  `json:"r"`
	S float64 `json:"s"`
}

type walWriter struct {
	f *os.File
	w *bufio.Writer
}

func (w *walWriter) append(rec walRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := w.w.Write(data); err != nil {
		return err
	}
	if err := w.w.WriteByte('\n'); err != nil {
		return err
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	storeWALBytes.Add(uint64(len(data)) + 1)
	storeWALRecords.Inc()
	return nil
}

func (w *walWriter) logPut(name string, m *mapping.Mapping) error {
	return w.append(putRecord(name, m))
}

func (w *walWriter) logDelete(name string) error {
	return w.append(walRecord{Op: "del", Name: name})
}

// close flushes and closes the log file. Both errors are durability
// signals: a flush failure means buffered records never reached the kernel,
// and a close failure can surface a deferred write-back error — the flush
// error wins when both fail, but neither is dropped.
func (w *walWriter) close() error {
	flushErr := w.w.Flush()
	closeErr := w.f.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// putRecord serializes a mapping straight from its columns: rows stream
// through EachOrd and resolve ordinals against the dictionary's id table —
// no []Correspondence copy of the whole table is ever materialized.
func putRecord(name string, m *mapping.Mapping) walRecord {
	rec := walRecord{
		Op:     "put",
		Name:   name,
		Domain: m.Domain().String(),
		Range:  m.Range().String(),
		Type:   string(m.Type()),
	}
	rec.Rows = make([]corrRecord, 0, m.Len())
	ids := m.Dict().All()
	m.EachOrd(func(d, r uint32, s float64) bool {
		rec.Rows = append(rec.Rows, corrRecord{D: string(ids[d]), R: string(ids[r]), S: s})
		return true
	})
	return rec
}

// mappingFromRecord materializes a replayed mapping interning through the
// store's dictionary. Ordinals never hit the disk format — records carry id
// strings, so a snapshot replays correctly into any dictionary.
func (s *Store) mappingFromRecord(rec walRecord) (*mapping.Mapping, error) {
	dom, err := model.ParseLDS(rec.Domain)
	if err != nil {
		return nil, fmt.Errorf("store: record %q: %w", rec.Name, err)
	}
	rng, err := model.ParseLDS(rec.Range)
	if err != nil {
		return nil, fmt.Errorf("store: record %q: %w", rec.Name, err)
	}
	m := mapping.NewWithDict(dom, rng, model.MappingType(rec.Type), s.dict)
	for _, row := range rec.Rows {
		m.Add(model.ID(row.D), model.ID(row.R), row.S)
	}
	return m, nil
}

// OpenRepository opens (creating if necessary) a persistent repository in
// dir. The snapshot is loaded first, then the write-ahead log is replayed.
// The repository owns a private ID dictionary: replayed mappings intern
// into it, so closing the last reference to the store releases that
// vocabulary instead of growing the process-global model.IDs with every
// mapping ever persisted. Auto-compaction is on at the documented defaults
// (SetAutoCompact).
//
//moma:guardedby-ok construct-then-publish: the store is not shared until OpenRepository returns
func OpenRepository(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	s := NewRepository()
	s.dict = model.NewIDDict()
	s.acRatio = DefaultAutoCompactRatio
	s.acMinRows = DefaultAutoCompactMinRows
	snapRows, err := s.replayFile(filepath.Join(dir, snapshotFile))
	if err != nil {
		return nil, err
	}
	walRows, err := s.replayFile(filepath.Join(dir, walFile))
	if err != nil {
		return nil, err
	}
	s.snapRows, s.walRows = snapRows, walRows
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open wal: %w", err)
	}
	s.wal = &walWriter{f: f, w: bufio.NewWriter(f)}
	s.dir = dir
	return s, nil
}

// replayFile applies all records of a snapshot or log file, returning the
// number of correspondence rows replayed; a missing file is fine. A
// trailing partial line (torn write) is tolerated on the last record only.
//
//moma:guardedby-ok called only from OpenRepository, before the store is published to any other goroutine
func (s *Store) replayFile(path string) (int, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: open %s: %w", path, err)
	}
	defer f.Close() //moma:errsink-ok read-only replay fd, nothing buffered to lose
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	lineNo := 0
	rows := 0
	var pendingErr error
	for sc.Scan() {
		lineNo++
		if pendingErr != nil {
			// A corrupt record followed by valid data is real corruption.
			return rows, pendingErr
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			pendingErr = fmt.Errorf("store: %s line %d: %w", path, lineNo, err)
			continue
		}
		switch rec.Op {
		case "put":
			m, err := s.mappingFromRecord(rec)
			if err != nil {
				return rows, err
			}
			if _, exists := s.maps[rec.Name]; !exists {
				s.order = append(s.order, rec.Name)
			}
			s.maps[rec.Name] = m
			rows += len(rec.Rows)
		case "add":
			m, exists := s.maps[rec.Name]
			if !exists {
				empty := rec
				empty.Rows = nil
				if m, err = s.mappingFromRecord(empty); err != nil {
					return rows, err
				}
				s.maps[rec.Name] = m
				s.order = append(s.order, rec.Name)
			}
			for _, row := range rec.Rows {
				m.AddMax(model.ID(row.D), model.ID(row.R), row.S)
			}
			rows += len(rec.Rows)
		case "del":
			if _, ok := s.maps[rec.Name]; ok {
				delete(s.maps, rec.Name)
				for i, n := range s.order {
					if n == rec.Name {
						s.order = append(s.order[:i], s.order[i+1:]...)
						break
					}
				}
			}
			rows++
		default:
			pendingErr = fmt.Errorf("store: %s line %d: unknown op %q", path, lineNo, rec.Op)
		}
	}
	if err := sc.Err(); err != nil {
		return rows, fmt.Errorf("store: scan %s: %w", path, err)
	}
	// pendingErr on the very last line is treated as a torn write and
	// dropped silently; the data before it is intact.
	return rows, nil
}

// Compact folds the current state into a fresh snapshot and truncates the
// write-ahead log. Only valid for stores opened with OpenRepository.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

// compactLocked is Compact under a held write lock — auto-compaction calls
// it from inside logged writes.
//
//moma:locked mu
func (s *Store) compactLocked() error {
	if s.wal == nil || s.dir == "" {
		return fmt.Errorf("store: Compact requires a persistent repository")
	}
	t0 := time.Now()
	tmp, err := os.CreateTemp(s.dir, "snapshot-*.tmp")
	if err != nil {
		return err
	}
	cw := &countingWriter{w: tmp}
	w := bufio.NewWriter(cw)
	enc := json.NewEncoder(w)
	for _, name := range s.order {
		if err := enc.Encode(putRecord(name, s.maps[name])); err != nil {
			tmp.Close() //moma:errsink-ok error path; the encode error wins and the tmp file is removed
			os.Remove(tmp.Name())
			return err
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close() //moma:errsink-ok error path; the flush error wins and the tmp file is removed
		os.Remove(tmp.Name())
		return err
	}
	// Sync before the rename: the rename is the commit point, and a crash
	// between rename and write-back would otherwise publish a snapshot whose
	// bytes never reached the disk.
	if err := tmp.Sync(); err != nil {
		tmp.Close() //moma:errsink-ok error path; the sync error wins and the tmp file is removed
		os.Remove(tmp.Name())
		return err
	}
	storeFsyncs.Inc()
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, snapshotFile)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// Swap in a truncated log: flush the old writer, open the new one, and
	// only then drop the old fd. Every failure path before the swap leaves
	// s.wal usable, so a failed compaction — which auto-compaction may hit
	// on any logged write — never wedges subsequent writes; the snapshot
	// just renamed is a superset of the surviving log, and replaying both
	// in order converges to the same state.
	if err := s.wal.w.Flush(); err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(s.dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_ = s.wal.f.Close() //moma:errsink-ok old fd already flushed above; the truncated file replaces it
	s.wal = &walWriter{f: f, w: bufio.NewWriter(f)}
	s.snapRows = s.rowsLocked()
	s.walRows = 0
	s.acErr = nil
	storeCompactions.Inc()
	storeCompactionSeconds.Observe(time.Since(t0).Seconds())
	storeSnapshotBytes.Set(cw.n)
	return nil
}

// countingWriter counts bytes on their way to the snapshot file, so
// compaction can report the snapshot size without a second stat.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Close flushes and closes the write-ahead log of a persistent repository;
// it is a no-op for in-memory stores.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.wal.close()
	s.wal = nil
	return err
}
