package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/mapping"
	"repro/internal/model"
)

// Persistence: a persistent Store is backed by a directory holding a
// snapshot file plus a write-ahead log of JSON records. On open, the
// snapshot is loaded and the log replayed; Compact folds the log into a
// fresh snapshot. JSON-lines records keep the log append-safe across
// process restarts (unlike a single gob stream).

const (
	snapshotFile = "snapshot.jsonl"
	walFile      = "wal.jsonl"
)

// walRecord is one persisted operation. "put" replaces a whole mapping,
// "add" merges delta rows (AddMax) into an existing or fresh mapping, "del"
// removes one.
type walRecord struct {
	Op     string       `json:"op"` // "put", "add" or "del"
	Name   string       `json:"name"`
	Domain string       `json:"domain,omitempty"`
	Range  string       `json:"range,omitempty"`
	Type   string       `json:"type,omitempty"`
	Rows   []corrRecord `json:"rows,omitempty"`
}

// corrRecord is one persisted correspondence.
type corrRecord struct {
	D string  `json:"d"`
	R string  `json:"r"`
	S float64 `json:"s"`
}

type walWriter struct {
	f *os.File
	w *bufio.Writer
}

func (w *walWriter) append(rec walRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := w.w.Write(data); err != nil {
		return err
	}
	if err := w.w.WriteByte('\n'); err != nil {
		return err
	}
	return w.w.Flush()
}

func (w *walWriter) logPut(name string, m *mapping.Mapping) error {
	return w.append(putRecord(name, m))
}

func (w *walWriter) logDelete(name string) error {
	return w.append(walRecord{Op: "del", Name: name})
}

func (w *walWriter) close() error {
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

func putRecord(name string, m *mapping.Mapping) walRecord {
	rec := walRecord{
		Op:     "put",
		Name:   name,
		Domain: m.Domain().String(),
		Range:  m.Range().String(),
		Type:   string(m.Type()),
	}
	for _, c := range m.Correspondences() {
		rec.Rows = append(rec.Rows, corrRecord{D: string(c.Domain), R: string(c.Range), S: c.Sim})
	}
	return rec
}

func mappingFromRecord(rec walRecord) (*mapping.Mapping, error) {
	dom, err := model.ParseLDS(rec.Domain)
	if err != nil {
		return nil, fmt.Errorf("store: record %q: %w", rec.Name, err)
	}
	rng, err := model.ParseLDS(rec.Range)
	if err != nil {
		return nil, fmt.Errorf("store: record %q: %w", rec.Name, err)
	}
	m := mapping.New(dom, rng, model.MappingType(rec.Type))
	for _, row := range rec.Rows {
		m.Add(model.ID(row.D), model.ID(row.R), row.S)
	}
	return m, nil
}

// OpenRepository opens (creating if necessary) a persistent repository in
// dir. The snapshot is loaded first, then the write-ahead log is replayed.
func OpenRepository(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	s := NewRepository()
	for _, file := range []string{filepath.Join(dir, snapshotFile), filepath.Join(dir, walFile)} {
		if err := s.replayFile(file); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open wal: %w", err)
	}
	s.wal = &walWriter{f: f, w: bufio.NewWriter(f)}
	s.dir = dir
	return s, nil
}

// replayFile applies all records of a snapshot or log file; a missing file
// is fine. A trailing partial line (torn write) is tolerated on the last
// record only.
func (s *Store) replayFile(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: open %s: %w", path, err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	lineNo := 0
	var pendingErr error
	for sc.Scan() {
		lineNo++
		if pendingErr != nil {
			// A corrupt record followed by valid data is real corruption.
			return pendingErr
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			pendingErr = fmt.Errorf("store: %s line %d: %w", path, lineNo, err)
			continue
		}
		switch rec.Op {
		case "put":
			m, err := mappingFromRecord(rec)
			if err != nil {
				return err
			}
			if _, exists := s.maps[rec.Name]; !exists {
				s.order = append(s.order, rec.Name)
			}
			s.maps[rec.Name] = m
		case "add":
			m, exists := s.maps[rec.Name]
			if !exists {
				empty := rec
				empty.Rows = nil
				if m, err = mappingFromRecord(empty); err != nil {
					return err
				}
				s.maps[rec.Name] = m
				s.order = append(s.order, rec.Name)
			}
			for _, row := range rec.Rows {
				m.AddMax(model.ID(row.D), model.ID(row.R), row.S)
			}
		case "del":
			if _, ok := s.maps[rec.Name]; ok {
				delete(s.maps, rec.Name)
				for i, n := range s.order {
					if n == rec.Name {
						s.order = append(s.order[:i], s.order[i+1:]...)
						break
					}
				}
			}
		default:
			pendingErr = fmt.Errorf("store: %s line %d: unknown op %q", path, lineNo, rec.Op)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("store: scan %s: %w", path, err)
	}
	// pendingErr on the very last line is treated as a torn write and
	// dropped silently; the data before it is intact.
	return nil
}

// Compact folds the current state into a fresh snapshot and truncates the
// write-ahead log. Only valid for stores opened with OpenRepository.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil || s.dir == "" {
		return fmt.Errorf("store: Compact requires a persistent repository")
	}
	tmp, err := os.CreateTemp(s.dir, "snapshot-*.tmp")
	if err != nil {
		return err
	}
	w := bufio.NewWriter(tmp)
	enc := json.NewEncoder(w)
	for _, name := range s.order {
		if err := enc.Encode(putRecord(name, s.maps[name])); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return err
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, snapshotFile)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// Truncate the log: close, recreate.
	if err := s.wal.close(); err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(s.dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	s.wal = &walWriter{f: f, w: bufio.NewWriter(f)}
	return nil
}

// Close flushes and closes the write-ahead log of a persistent repository;
// it is a no-op for in-memory stores.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.wal.close()
	s.wal = nil
	return err
}
