package store

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/mapping"
	"repro/internal/model"
)

var (
	dblpPub = model.LDS{Source: "DBLP", Type: model.Publication}
	acmPub  = model.LDS{Source: "ACM", Type: model.Publication}
	gsPub   = model.LDS{Source: "GS", Type: model.Publication}
)

func sampleMapping(n int) *mapping.Mapping {
	m := mapping.NewSame(dblpPub, acmPub)
	for i := 0; i < n; i++ {
		m.Add(model.ID(rune('a'+i%26)), model.ID(rune('A'+i%26)), 0.5+float64(i%5)/10)
	}
	return m
}

func TestPutGetDelete(t *testing.T) {
	s := NewRepository()
	m := sampleMapping(3)
	if err := s.Put("pubs", m); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("pubs")
	if !ok || got.Len() != 3 {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if !s.Has("pubs") || s.Has("nope") {
		t.Error("Has mismatch")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	if ok, err := s.Delete("pubs"); err != nil || !ok {
		t.Errorf("Delete = %v, %v; should report true", ok, err)
	}
	if ok, err := s.Delete("pubs"); err != nil || ok {
		t.Errorf("second Delete = %v, %v; should report false", ok, err)
	}
	if s.Len() != 0 {
		t.Error("store should be empty")
	}
}

func TestPutValidation(t *testing.T) {
	s := NewRepository()
	if err := s.Put("", sampleMapping(1)); err == nil {
		t.Error("empty name should fail")
	}
	if err := s.Put("x", nil); err == nil {
		t.Error("nil mapping should fail")
	}
}

func TestMustGetHints(t *testing.T) {
	s := NewRepository()
	s.Put("DBLP-ACM.PubSame", sampleMapping(1))
	if _, err := s.MustGet("DBLP-ACM.PubSame"); err != nil {
		t.Errorf("MustGet existing: %v", err)
	}
	_, err := s.MustGet("PubSame")
	if err == nil || !strings.Contains(err.Error(), "DBLP-ACM.PubSame") {
		t.Errorf("MustGet should hint at close names, got %v", err)
	}
	_, err = s.MustGet("zzz")
	if err == nil {
		t.Error("unknown name should fail")
	}
}

func TestNamesInsertionOrder(t *testing.T) {
	s := NewRepository()
	s.Put("b", sampleMapping(1))
	s.Put("a", sampleMapping(1))
	s.Put("b", sampleMapping(2)) // replace refreshes the entry's age
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v, want [a b]", names)
	}
	if m, _ := s.Get("b"); m.Len() != 2 {
		t.Error("replacement not applied")
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("m1", sampleMapping(1))
	c.Put("m2", sampleMapping(1))
	c.Put("m3", sampleMapping(1))
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if c.Has("m1") {
		t.Error("oldest entry should be evicted")
	}
	if !c.Has("m2") || !c.Has("m3") {
		t.Error("newest entries should survive")
	}
}

// TestCacheEvictionAfterOverwrite is the regression test for re-put aging:
// overwriting an entry must refresh its age, so a bounded cache evicts the
// actually-oldest entry instead of a just-overwritten hot one.
func TestCacheEvictionAfterOverwrite(t *testing.T) {
	c := NewCache(2)
	c.Put("hot", sampleMapping(1))
	c.Put("cold", sampleMapping(1))
	c.Put("hot", sampleMapping(2)) // refresh: hot is now the newest entry
	c.Put("m3", sampleMapping(1))  // exceeds the limit
	if c.Has("cold") {
		t.Error("cold is the oldest entry and should have been evicted")
	}
	if !c.Has("hot") || !c.Has("m3") {
		t.Errorf("hot and m3 should survive, names = %v", c.Names())
	}
	if m, _ := c.Get("hot"); m.Len() != 2 {
		t.Error("overwritten value lost")
	}
	if got := c.Names(); len(got) != 2 || got[0] != "hot" || got[1] != "m3" {
		t.Errorf("Names = %v, want [hot m3]", got)
	}
}

func TestSameMappingsBetween(t *testing.T) {
	s := NewRepository()
	s.Put("same1", mapping.NewSame(dblpPub, acmPub))
	s.Put("same2", mapping.NewSame(acmPub, dblpPub))
	s.Put("other", mapping.NewSame(dblpPub, gsPub))
	s.Put("asso", mapping.New(dblpPub, acmPub, "x"))
	got := s.SameMappingsBetween(dblpPub, acmPub)
	if len(got) != 2 || got[0] != "same1" || got[1] != "same2" {
		t.Errorf("SameMappingsBetween = %v", got)
	}
}

func TestClearAndSummarize(t *testing.T) {
	s := NewRepository()
	s.Put("a", sampleMapping(3))
	s.Put("b", mapping.New(dblpPub, acmPub, "asso"))
	st := s.Summarize()
	if st.Mappings != 2 || st.Correspondences != 3 || st.SameMappings != 1 {
		t.Errorf("Summarize = %+v", st)
	}
	s.Clear()
	if s.Len() != 0 || len(s.Names()) != 0 {
		t.Error("Clear failed")
	}
}

func TestStoreString(t *testing.T) {
	s := NewRepository()
	s.Put("pubs", sampleMapping(2))
	out := s.String()
	if !strings.Contains(out, "pubs") || !strings.Contains(out, "Publication@DBLP") {
		t.Errorf("String = %q", out)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewRepository()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := string(rune('a' + i))
			for j := 0; j < 100; j++ {
				s.Put(name, sampleMapping(j%5))
				s.Get(name)
				s.Names()
				s.Summarize()
			}
		}(i)
	}
	wg.Wait()
	if s.Len() != 8 {
		t.Errorf("Len = %d, want 8", s.Len())
	}
}
