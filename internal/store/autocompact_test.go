package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mapping"
	"repro/internal/model"
)

func walLines(t *testing.T, dir string) int {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, walFile))
	if os.IsNotExist(err) {
		return 0
	}
	if err != nil {
		t.Fatal(err)
	}
	return strings.Count(string(data), "\n")
}

// TestAutoCompactBoundsDeltaChurn drives a delta-heavy workload — the
// online arrival pattern — and asserts the write-ahead log stays bounded
// instead of growing one row per arrival forever.
func TestAutoCompactBoundsDeltaChurn(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetAutoCompact(2, 32)

	lds := model.LDS{Source: "DBLP", Type: model.Publication}
	maxLines := 0
	for i := 0; i < 500; i++ {
		rows := []mapping.Correspondence{{
			Domain: model.ID(fmt.Sprintf("a%d", i%10)),
			Range:  model.ID(fmt.Sprintf("b%d", i%7)),
			Sim:    0.5 + float64(i%50)/100,
		}}
		if err := s.PutDelta("live.X", lds, lds, model.SameMappingType, rows); err != nil {
			t.Fatal(err)
		}
		if n := walLines(t, dir); n > maxLines {
			maxLines = n
		}
	}
	// Compaction triggers once the log holds max(minRows, ratio×snapshot)
	// rows; with ≤70 live rows and ratio 2 the log can never pass ~140
	// lines plus one in-flight batch. Without auto-compaction it would
	// reach 500.
	if maxLines > 200 {
		t.Fatalf("delta churn grew the log to %d lines; auto-compaction should bound it", maxLines)
	}

	// The compacted store replays to the same state.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	m, ok := re.Get("live.X")
	if !ok {
		t.Fatal("mapping lost across auto-compacted reopen")
	}
	if m.Len() != 70 { // 10 domains × 7 ranges
		t.Fatalf("replayed mapping has %d rows, want 70", m.Len())
	}
}

// TestAutoCompactBoundsPutChurn rewrites the same mapping repeatedly (the
// batch pattern: every Put logs the full table) and asserts the log folds.
func TestAutoCompactBoundsPutChurn(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetAutoCompact(2, 32)

	lds := model.LDS{Source: "DBLP", Type: model.Publication}
	m := mapping.NewSame(lds, lds)
	for i := 0; i < 50; i++ {
		m.Add(model.ID(fmt.Sprintf("a%d", i)), model.ID(fmt.Sprintf("b%d", i)), 1)
	}
	for i := 0; i < 40; i++ {
		if err := s.Put("m", m); err != nil {
			t.Fatal(err)
		}
	}
	if n := walLines(t, dir); n > 4 {
		t.Fatalf("put churn left %d log records; auto-compaction should fold them", n)
	}
	if got, _ := s.Get("m"); got.Len() != 50 {
		t.Fatalf("state corrupted by auto-compaction: %d rows", got.Len())
	}
}

// TestAutoCompactDisabled pins that a zero ratio turns the feature off and
// manual Compact still works.
func TestAutoCompactDisabled(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetAutoCompact(0, 0)

	lds := model.LDS{Source: "DBLP", Type: model.Publication}
	for i := 0; i < 100; i++ {
		rows := []mapping.Correspondence{{Domain: "a", Range: model.ID(fmt.Sprintf("b%d", i)), Sim: 1}}
		if err := s.PutDelta("live.X", lds, lds, model.SameMappingType, rows); err != nil {
			t.Fatal(err)
		}
	}
	if n := walLines(t, dir); n != 100 {
		t.Fatalf("disabled auto-compaction should leave all %d records, got %d", 100, n)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if n := walLines(t, dir); n != 0 {
		t.Fatalf("manual Compact left %d log records", n)
	}
}

// TestOpenRepositoryCountsExistingLog pins that a reopened store knows its
// log size: writes after reopen keep the bound without waiting for another
// full ratio's worth of rows.
func TestOpenRepositoryCountsExistingLog(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.SetAutoCompact(0, 0) // accumulate a log without compaction
	lds := model.LDS{Source: "DBLP", Type: model.Publication}
	for i := 0; i < 90; i++ {
		rows := []mapping.Correspondence{{Domain: "a", Range: model.ID(fmt.Sprintf("b%d", i)), Sim: 1}}
		if err := s.PutDelta("live.X", lds, lds, model.SameMappingType, rows); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	re.SetAutoCompact(0.5, 16) // log (90 rows) already far past ratio×snapshot (0 rows)
	rows := []mapping.Correspondence{{Domain: "a", Range: "z", Sim: 1}}
	if err := re.PutDelta("live.X", lds, lds, model.SameMappingType, rows); err != nil {
		t.Fatal(err)
	}
	if n := walLines(t, dir); n != 0 {
		t.Fatalf("first write after reopen should have compacted the inherited log, %d records remain", n)
	}
}
