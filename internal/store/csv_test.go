package store

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/mapping"
	"repro/internal/model"
)

func TestMappingCSVRoundTrip(t *testing.T) {
	m := mapping.NewSame(dblpPub, acmPub)
	m.Add("conf/VLDB/MadhavanBR01", "P-672191", 1)
	m.Add("conf/VLDB/ChirkovaHS01", "P-672216", 1)
	m.Add("title,with,commas", "quote\"id", 0.123456789)

	var buf bytes.Buffer
	if err := WriteMappingCSV(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMappingCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m, 1e-15) {
		t.Errorf("round trip differs:\n%s\nvs\n%s", got, m)
	}
}

func TestMappingCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"not,a,mapping\n",
		"#mapping,BadLDS,Publication@ACM,same\ndomain,range,sim\n",
		"#mapping,Publication@DBLP,BadLDS,same\ndomain,range,sim\n",
		"#mapping,Publication@DBLP,Publication@ACM,same\nbad,header,row\n",
		"#mapping,Publication@DBLP,Publication@ACM,same\ndomain,range,sim\na,b,notanumber\n",
		"#mapping,Publication@DBLP,Publication@ACM,same\ndomain,range,sim\na,b\n",
		"#mapping,Publication@DBLP,Publication@ACM,same\n",
	}
	for i, in := range cases {
		if _, err := ReadMappingCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d should fail: %q", i, in)
		}
	}
}

func TestObjectSetCSVRoundTrip(t *testing.T) {
	set := model.NewObjectSet(dblpPub)
	set.AddNew("p1", map[string]string{"title": "A, B and \"C\"", "year": "2001"})
	set.AddNew("p2", map[string]string{"title": "Another"})
	set.AddNew("p3", nil)

	var buf bytes.Buffer
	if err := WriteObjectSetCSV(&buf, set); err != nil {
		t.Fatal(err)
	}
	got, err := ReadObjectSetCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.LDS() != set.LDS() || got.Len() != set.Len() {
		t.Fatalf("round trip shape differs: %v, %d", got.LDS(), got.Len())
	}
	if got.Get("p1").Attr("title") != "A, B and \"C\"" || got.Get("p1").Attr("year") != "2001" {
		t.Errorf("p1 attrs = %v", got.Get("p1"))
	}
	// p2 has no year column value: must come back absent, not empty-set.
	if got.Get("p2").HasAttr("year") {
		t.Error("empty CSV cell should not create an attribute")
	}
}

func TestObjectSetCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"wrong,meta\n",
		"#objects,BadLDS\nid\n",
		"#objects,Publication@DBLP\nnotid,title\n",
		"#objects,Publication@DBLP\n",
		"#objects,Publication@DBLP\nid,title\np1\n",
	}
	for i, in := range cases {
		if _, err := ReadObjectSetCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d should fail: %q", i, in)
		}
	}
}

func TestMappingCSVDeterministicOutput(t *testing.T) {
	m := mapping.NewSame(dblpPub, acmPub)
	m.Add("b", "y", 0.5)
	m.Add("a", "x", 0.9)
	var buf1, buf2 bytes.Buffer
	WriteMappingCSV(&buf1, m)
	WriteMappingCSV(&buf2, m.Clone())
	if buf1.String() != buf2.String() {
		t.Error("CSV output must be deterministic")
	}
	lines := strings.Split(strings.TrimSpace(buf1.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %v", lines)
	}
	if !strings.HasPrefix(lines[2], "a,") {
		t.Errorf("rows must be sorted, got %q first", lines[2])
	}
}
