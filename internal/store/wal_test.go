package store

import (
	"bufio"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mapping"
	"repro/internal/model"
)

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := sampleMapping(5)
	if err := s.Put("pubs", m); err != nil {
		t.Fatal(err)
	}
	s.Put("dropme", sampleMapping(2))
	s.Delete("dropme")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, ok := re.Get("pubs")
	if !ok {
		t.Fatal("pubs not recovered")
	}
	if !got.Equal(m, 1e-12) {
		t.Error("recovered mapping differs")
	}
	if re.Has("dropme") {
		t.Error("deleted mapping should stay deleted after recovery")
	}
}

func TestDropTouchingPersists(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	// "a" appears as a domain id and "B" as a range id; "a"->"A" plus
	// "a"->"B" plus "b"->"B" means dropping "a" removes two rows and
	// dropping "B" afterwards removes the one survivor touching it.
	m := mapping.NewSame(dblpPub, acmPub)
	m.Add("a", "A", 0.9)
	m.Add("a", "B", 0.8)
	m.Add("b", "B", 0.7)
	m.Add("c", "C", 0.6)
	if err := s.Put("live", m); err != nil {
		t.Fatal(err)
	}
	if n, err := s.DropTouching("live", "a"); err != nil || n != 2 {
		t.Fatalf("DropTouching(a) = %d, %v; want 2, nil", n, err)
	}
	if n, err := s.DropTouching("live", "a"); err != nil || n != 0 {
		t.Fatalf("second DropTouching(a) = %d, %v; want 0, nil", n, err)
	}
	if n, err := s.DropTouching("live", "B"); err != nil || n != 1 {
		t.Fatalf("DropTouching(B) = %d, %v; want 1, nil", n, err)
	}
	if n, err := s.DropTouching("absent", "a"); err != nil || n != 0 {
		t.Fatalf("DropTouching on absent mapping = %d, %v; want 0, nil", n, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, ok := re.Get("live")
	if !ok {
		t.Fatal("live not recovered")
	}
	want := mapping.NewSame(dblpPub, acmPub)
	want.Add("c", "C", 0.6)
	if !got.Equal(want, 0) {
		t.Errorf("recovered mapping after drops:\n%v\nwant:\n%v", got, want)
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Put("m", sampleMapping(i+1)) // 10 wal records for the same name
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// After compaction the wal must be empty and the snapshot present.
	walInfo, err := os.Stat(filepath.Join(dir, walFile))
	if err != nil || walInfo.Size() != 0 {
		t.Errorf("wal after compact: size=%v err=%v", walInfo.Size(), err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFile)); err != nil {
		t.Errorf("snapshot missing: %v", err)
	}
	s.Put("after", sampleMapping(1))
	s.Close()

	re, err := OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got, _ := re.Get("m"); got == nil || got.Len() != 10 {
		t.Errorf("recovered m has %v corrs, want 10", got.Len())
	}
	if !re.Has("after") {
		t.Error("post-compact write lost")
	}
}

func TestCompactOnMemoryStoreFails(t *testing.T) {
	if err := NewRepository().Compact(); err == nil {
		t.Error("Compact on in-memory store should fail")
	}
}

func TestTornWriteTolerated(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("keep", sampleMapping(3))
	s.Close()

	// Simulate a torn final write.
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"op":"put","name":"torn","domain":"Pub`)
	f.Close()

	re, err := OpenRepository(dir)
	if err != nil {
		t.Fatalf("torn trailing record should be tolerated: %v", err)
	}
	defer re.Close()
	if !re.Has("keep") {
		t.Error("intact record lost")
	}
	if re.Has("torn") {
		t.Error("torn record must not be applied")
	}
}

func TestCorruptionMidFileFails(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("a", sampleMapping(1))
	s.Close()

	// Corrupt the first line, then append a valid record: mid-file
	// corruption must be reported, not silently skipped.
	path := filepath.Join(dir, walFile)
	data, _ := os.ReadFile(path)
	data[0] = 'X'
	os.WriteFile(path, data, 0o644)
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	f.WriteString("\n{\"op\":\"del\",\"name\":\"a\"}\n")
	f.Close()

	if _, err := OpenRepository(dir); err == nil {
		t.Error("mid-file corruption should fail recovery")
	}
}

func TestUnknownOpMidFileFails(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, walFile)
	os.WriteFile(path, []byte("{\"op\":\"frob\",\"name\":\"x\"}\n{\"op\":\"del\",\"name\":\"x\"}\n"), 0o644)
	if _, err := OpenRepository(dir); err == nil {
		t.Error("unknown op followed by data should fail")
	}
}

func TestRecoveryPreservesOrder(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenRepository(dir)
	s.Put("z", sampleMapping(1))
	s.Put("a", sampleMapping(1))
	s.Close()
	re, err := OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	names := re.Names()
	if len(names) != 2 || names[0] != "z" || names[1] != "a" {
		t.Errorf("recovered order = %v", names)
	}
}

// TestPutDeltaCrashReplay is the crash-consistency test of the online
// delta path: every PutDelta persists its rows inside the call, so a
// repository reopened from disk — without the writer ever closing, as after
// a crash — holds exactly the acknowledged deltas, including AddMax
// upgrades and interleaved full Puts.
func TestPutDeltaCrashReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	delta := func(rows ...mapping.Correspondence) {
		t.Helper()
		if err := s.PutDelta("live.ACM", dblpPub, acmPub, model.SameMappingType, rows); err != nil {
			t.Fatal(err)
		}
	}
	delta(mapping.Correspondence{Domain: "d1", Range: "r1", Sim: 0.8})
	delta(mapping.Correspondence{Domain: "d2", Range: "r1", Sim: 0.7},
		mapping.Correspondence{Domain: "d2", Range: "r2", Sim: 0.9})
	// AddMax semantics: the higher similarity must win on replay too.
	delta(mapping.Correspondence{Domain: "d1", Range: "r1", Sim: 0.95})
	delta(mapping.Correspondence{Domain: "d1", Range: "r1", Sim: 0.5})
	// An interleaved full Put (the remove path rewrites filtered mappings)
	// must replace, and later deltas must build on it.
	filtered, _ := s.Get("live.ACM")
	if err := s.Put("live.ACM", filtered.Filter(func(c mapping.Correspondence) bool {
		return c.Domain != "d2"
	})); err != nil {
		t.Fatal(err)
	}
	delta(mapping.Correspondence{Domain: "d3", Range: "r3", Sim: 0.6})
	want, _ := s.Get("live.ACM")

	// Crash: reopen from disk without closing the writer (PutDelta flushes
	// per record, so everything acknowledged is on disk).
	re, err := OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, ok := re.Get("live.ACM")
	if !ok {
		t.Fatal("delta mapping not recovered")
	}
	if !got.Equal(want, 0) {
		t.Fatalf("replayed deltas diverge:\ngot  %v\nwant %v", got, want)
	}
	if s, _ := got.Sim("d1", "r1"); s != 0.95 {
		t.Fatalf("AddMax not preserved by replay: sim(d1,r1) = %v, want 0.95", s)
	}
	if got.DomainCount("d2") != 0 {
		t.Fatal("full Put between deltas not replayed as a replacement")
	}
	s.Close()

	// A torn trailing delta record must be dropped, keeping the prefix.
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"op":"add","name":"live.ACM","rows":[{"d":"dX"`)
	f.Close()
	re2, err := OpenRepository(dir)
	if err != nil {
		t.Fatalf("torn trailing delta should be tolerated: %v", err)
	}
	defer re2.Close()
	got2, _ := re2.Get("live.ACM")
	if !got2.Equal(want, 0) {
		t.Fatal("torn delta corrupted the recovered mapping")
	}
	if got2.DomainCount("dX") != 0 {
		t.Fatal("torn delta row must not be applied")
	}
}

// TestPutDeltaCreatesAndEvicts covers delta creation on a fresh name and
// the no-op empty delta.
func TestPutDeltaCreatesAndEvicts(t *testing.T) {
	s := NewRepository()
	if err := s.PutDelta("live.X", dblpPub, acmPub, model.SameMappingType, nil); err != nil {
		t.Fatal(err)
	}
	if s.Has("live.X") {
		t.Fatal("empty delta must not create a mapping")
	}
	if err := s.PutDelta("live.X", dblpPub, acmPub, model.SameMappingType,
		[]mapping.Correspondence{{Domain: "a", Range: "b", Sim: 1}}); err != nil {
		t.Fatal(err)
	}
	m, ok := s.Get("live.X")
	if !ok || m.Len() != 1 || !m.IsSame() {
		t.Fatalf("delta-created mapping = %v (ok=%v)", m, ok)
	}
	if err := s.PutDelta("", dblpPub, acmPub, model.SameMappingType,
		[]mapping.Correspondence{{Domain: "a", Range: "b", Sim: 1}}); err == nil {
		t.Fatal("empty name must be rejected")
	}
}

func TestMappingFromRecordErrors(t *testing.T) {
	s := NewRepository()
	if _, err := s.mappingFromRecord(walRecord{Name: "x", Domain: "bad", Range: "Publication@ACM"}); err == nil {
		t.Error("bad domain LDS should fail")
	}
	if _, err := s.mappingFromRecord(walRecord{Name: "x", Domain: "Publication@DBLP", Range: "bad"}); err == nil {
		t.Error("bad range LDS should fail")
	}
}

func TestCloseIdempotentOnMemoryStore(t *testing.T) {
	s := NewRepository()
	if err := s.Close(); err != nil {
		t.Errorf("Close on memory store: %v", err)
	}
}

func TestDeletePersisted(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenRepository(dir)
	m := mapping.NewSame(dblpPub, acmPub)
	m.Add("x", "y", 1)
	s.Put("m", m)
	s.Close()

	s2, _ := OpenRepository(dir)
	s2.Delete("m")
	s2.Close()

	s3, err := OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Has("m") {
		t.Error("delete should survive restart")
	}
}

// TestWALWriterCloseSurfacesErrors pins walWriter.close's durability
// contract: neither a flush failure (buffered records never reached the
// kernel) nor a close failure (deferred write-back error) may be dropped.
func TestWALWriterCloseSurfacesErrors(t *testing.T) {
	newClosedWriter := func(t *testing.T) *walWriter {
		t.Helper()
		f, err := os.Create(filepath.Join(t.TempDir(), "wal"))
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return &walWriter{f: f, w: bufio.NewWriter(f)}
	}

	// Close failure with an empty buffer: the flush is a no-op, so the only
	// error is the close's — it must come back.
	w := newClosedWriter(t)
	if err := w.close(); !errors.Is(err, os.ErrClosed) {
		t.Errorf("close with failing fd close: got %v, want ErrClosed", err)
	}

	// Flush failure: buffered bytes that cannot reach the fd must surface,
	// even though the close also fails.
	w = newClosedWriter(t)
	if _, err := w.w.WriteString("pending record\n"); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); !errors.Is(err, os.ErrClosed) {
		t.Errorf("close with buffered data and failing fd: got %v, want ErrClosed", err)
	}
}
