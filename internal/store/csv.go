package store

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/mapping"
	"repro/internal/model"
)

// CSV import/export for mapping tables and object sets, the interchange
// format of the cmd/moma tools. A mapping file carries its metadata in the
// first data row:
//
//	#mapping,Publication@DBLP,Publication@ACM,same
//	domain,range,sim
//	conf/VLDB/MadhavanBR01,P-672191,1
//
// An object-set file carries the LDS in the first row and a header naming
// the id column plus the attribute columns:
//
//	#objects,Publication@DBLP
//	id,title,year
//	conf/VLDB/MadhavanBR01,Generic Schema Matching with Cupid,2001

// WriteMappingCSV writes m in the mapping CSV format, sorted canonically.
func WriteMappingCSV(w io.Writer, m *mapping.Mapping) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"#mapping", m.Domain().String(), m.Range().String(), string(m.Type())}); err != nil {
		return err
	}
	if err := cw.Write([]string{"domain", "range", "sim"}); err != nil {
		return err
	}
	for _, c := range m.Sorted() {
		rec := []string{string(c.Domain), string(c.Range), strconv.FormatFloat(c.Sim, 'g', -1, 64)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadMappingCSV parses a mapping written by WriteMappingCSV.
func ReadMappingCSV(r io.Reader) (*mapping.Mapping, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	meta, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("store: mapping csv: %w", err)
	}
	if len(meta) != 4 || meta[0] != "#mapping" {
		return nil, fmt.Errorf("store: mapping csv: bad metadata row %v", meta)
	}
	dom, err := model.ParseLDS(meta[1])
	if err != nil {
		return nil, fmt.Errorf("store: mapping csv: %w", err)
	}
	rng, err := model.ParseLDS(meta[2])
	if err != nil {
		return nil, fmt.Errorf("store: mapping csv: %w", err)
	}
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("store: mapping csv: missing header: %w", err)
	}
	if len(header) != 3 || header[0] != "domain" || header[1] != "range" || header[2] != "sim" {
		return nil, fmt.Errorf("store: mapping csv: bad header %v", header)
	}
	m := mapping.New(dom, rng, model.MappingType(meta[3]))
	line := 2
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("store: mapping csv: %w", err)
		}
		line++
		if len(rec) != 3 {
			return nil, fmt.Errorf("store: mapping csv line %d: want 3 fields, got %d", line, len(rec))
		}
		s, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("store: mapping csv line %d: bad sim %q", line, rec[2])
		}
		m.Add(model.ID(rec[0]), model.ID(rec[1]), s)
	}
	return m, nil
}

// WriteObjectSetCSV writes the object set with a deterministic column
// order: id first, then all attribute names seen across instances, sorted.
func WriteObjectSetCSV(w io.Writer, set *model.ObjectSet) error {
	attrSet := make(map[string]bool)
	set.Each(func(in *model.Instance) bool {
		for k := range in.Attrs {
			attrSet[k] = true
		}
		return true
	})
	attrs := make([]string, 0, len(attrSet))
	for k := range attrSet {
		attrs = append(attrs, k)
	}
	sort.Strings(attrs)

	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"#objects", set.LDS().String()}); err != nil {
		return err
	}
	header := append([]string{"id"}, attrs...)
	if err := cw.Write(header); err != nil {
		return err
	}
	var werr error
	set.Each(func(in *model.Instance) bool {
		rec := make([]string, 0, len(header))
		rec = append(rec, string(in.ID))
		for _, a := range attrs {
			rec = append(rec, in.Attr(a))
		}
		if err := cw.Write(rec); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return werr
	}
	cw.Flush()
	return cw.Error()
}

// ReadObjectSetCSV parses an object set written by WriteObjectSetCSV.
func ReadObjectSetCSV(r io.Reader) (*model.ObjectSet, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	meta, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("store: objects csv: %w", err)
	}
	if len(meta) != 2 || meta[0] != "#objects" {
		return nil, fmt.Errorf("store: objects csv: bad metadata row %v", meta)
	}
	lds, err := model.ParseLDS(meta[1])
	if err != nil {
		return nil, fmt.Errorf("store: objects csv: %w", err)
	}
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("store: objects csv: missing header: %w", err)
	}
	if len(header) < 1 || header[0] != "id" {
		return nil, fmt.Errorf("store: objects csv: bad header %v", header)
	}
	set := model.NewObjectSet(lds)
	line := 2
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("store: objects csv: %w", err)
		}
		line++
		if len(rec) != len(header) {
			return nil, fmt.Errorf("store: objects csv line %d: want %d fields, got %d", line, len(header), len(rec))
		}
		attrs := make(map[string]string, len(header)-1)
		for i := 1; i < len(header); i++ {
			if rec[i] != "" {
				attrs[header[i]] = rec[i]
			}
		}
		set.AddNew(model.ID(rec[0]), attrs)
	}
	return set, nil
}
