// Package faultfs is the injectable filesystem seam under MOMA's
// persistence layer. internal/store performs every WAL, snapshot and
// compaction I/O operation through the FS interface; production code uses
// the OS passthrough (a zero-overhead forwarding layer over the os
// package), and tests and chaos harnesses substitute an Injector that
// fails scripted operations deterministically — short writes, ENOSPC,
// fsync errors, torn renames, fail-after-N-bytes — so every failure mode
// of the write path is reachable from a test, not just from a dying disk.
//
// The seam is deliberately narrow: exactly the operations the store issues
// (open, create-temp, write, sync, close, rename, remove, truncate,
// mkdir), no more. A File is the subset of *os.File the store touches;
// OS methods return *os.File values directly through the interface, so the
// passthrough adds one interface indirection and no per-operation
// allocations on the warm write path (BenchmarkWALPutDelta pins this).
package faultfs

import (
	"io"
	"os"
)

// File is the subset of *os.File the store's persistence paths use.
// *os.File satisfies it directly.
type File interface {
	io.Reader
	io.Writer
	// Sync flushes file contents to stable storage (fsync).
	Sync() error
	// Close closes the file, surfacing deferred write-back errors.
	Close() error
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the filesystem operations seam. Implementations must be safe for
// concurrent use (the store serializes writes, but replay and compaction
// may overlap reads in tests).
type FS interface {
	// MkdirAll creates a directory path (os.MkdirAll semantics).
	MkdirAll(path string, perm os.FileMode) error
	// Open opens a file for reading.
	Open(name string) (File, error)
	// OpenFile opens with the given flags (append-mode WAL handles,
	// truncating reopens).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// CreateTemp creates a temporary file in dir (os.CreateTemp semantics).
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// Truncate resizes a file in place (torn-tail repair).
	Truncate(name string, size int64) error
}

// OS is the production FS: a direct passthrough to the os package.
type OS struct{}

// MkdirAll implements FS.
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// Open implements FS.
func (OS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// OpenFile implements FS.
func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// CreateTemp implements FS.
func (OS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// Truncate implements FS.
func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }
