package faultfs

// The Injector: a scriptable FS that fails chosen operations. Faults are
// matched by (operation, path substring, occurrence count), so a schedule
// is deterministic given a deterministic sequence of filesystem operations
// — which the store's single-writer discipline guarantees. A seeded
// pseudo-random schedule (SeedSchedule) layers chaos-mode injection on top
// with the same determinism: the PRNG consumes one draw per eligible
// operation, so equal seeds and equal workloads fault identically.

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"
)

// ErrInjected is the sentinel all injected faults match via errors.Is —
// tests distinguish "the fault I scheduled" from real filesystem trouble.
var ErrInjected = errors.New("faultfs: injected fault")

// Op identifies one filesystem operation class for fault matching.
type Op uint8

// Operation classes. OpOpen covers Open and OpenFile — the path and
// occurrence fields disambiguate when it matters.
const (
	OpOpen Op = iota
	OpCreate
	OpWrite
	OpSync
	OpClose
	OpRename
	OpRemove
	OpTruncate
	OpMkdir
)

var opNames = [...]string{"open", "create", "write", "sync", "close", "rename", "remove", "truncate", "mkdir"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "op?"
}

func parseOp(s string) (Op, error) {
	for i, n := range opNames {
		if s == n {
			return Op(i), nil
		}
	}
	return 0, fmt.Errorf("faultfs: unknown op %q (want one of %s)", s, strings.Join(opNames[:], ", "))
}

// Kind is the failure mode of a rule.
type Kind uint8

const (
	// KindErr fails the operation outright with the rule's error.
	KindErr Kind = iota
	// KindShortWrite writes only N bytes of the buffer, then returns
	// io.ErrShortWrite — a partially persisted record.
	KindShortWrite
	// KindFailAfter lets N more bytes through (across all matching writes),
	// fails the write that crosses the budget after writing the remainder,
	// and fails every later matching write — a disk filling up. Inherently
	// sticky.
	KindFailAfter
	// KindTornRename leaves the rename unperformed — source (the tmp file)
	// in place, destination untouched — and returns the rule's error: a
	// crash immediately before the atomic commit point. (The complementary
	// "crash after rename, before log truncate" schedule is expressed as a
	// KindErr rule on the truncating open that follows the rename.)
	KindTornRename
)

var kindNames = map[string]struct {
	kind Kind
	err  error
}{
	"err":       {KindErr, nil},
	"enospc":    {KindErr, syscall.ENOSPC},
	"eio":       {KindErr, syscall.EIO},
	"short":     {KindShortWrite, io.ErrShortWrite},
	"failafter": {KindFailAfter, syscall.ENOSPC},
	"torn":      {KindTornRename, nil},
}

// InjectedError is the error injected faults return: it carries the faulted
// operation and path, unwraps to the scheduled errno (so
// errors.Is(err, syscall.ENOSPC) holds for an ENOSPC rule) and matches
// ErrInjected via errors.Is.
type InjectedError struct {
	Op   Op
	Path string
	Err  error
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultfs: injected %s fault on %s: %v", e.Op, e.Path, e.Err)
}

func (e *InjectedError) Unwrap() error { return e.Err }

// Is matches the ErrInjected sentinel.
func (e *InjectedError) Is(target error) bool { return target == ErrInjected }

// Rule schedules one fault: the After-th operation of class Op whose path
// contains Path fails with Kind. The zero Path matches every path. Sticky
// rules keep failing every later match; one-shot rules fire once.
type Rule struct {
	Op     Op
	Path   string // substring match on the operation's path; "" matches all
	After  int    // matching calls that succeed before the fault fires
	Kind   Kind
	N      int64 // byte count for KindShortWrite / KindFailAfter
	Err    error // error returned; nil defaults per kind (ErrInjected)
	Sticky bool  // keep failing after the first firing

	seen      int   // matching calls observed so far
	done      bool  // one-shot rule already fired
	remaining int64 // KindFailAfter byte budget (initialized from N on first match)
	armed     bool
}

// Injector is an FS that forwards to a base FS but fails scripted
// operations. Safe for concurrent use.
type Injector struct {
	base FS

	mu    sync.Mutex
	rules []*Rule
	fired []string
	rng   *rand.Rand // seeded chaos schedule; nil when disarmed
	every int
}

// NewInjector wraps base (OS{} when nil) with an empty schedule: until
// rules are added it is a pure passthrough.
func NewInjector(base FS) *Injector {
	if base == nil {
		base = OS{}
	}
	return &Injector{base: base}
}

// Inject appends rules to the schedule. Rules added while the store is
// already open only see operations issued after the call — tests arm
// faults mid-workload this way.
func (in *Injector) Inject(rules ...Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i := range rules {
		r := rules[i]
		in.rules = append(in.rules, &r)
	}
}

// ClearFaults drops every rule and the seeded schedule; subsequent
// operations pass through. The fired log is kept.
func (in *Injector) ClearFaults() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = nil
	in.rng = nil
}

// SeedSchedule arms a deterministic pseudo-random schedule: each write and
// sync operation faults with probability 1/everyN, the failure mode chosen
// by the same PRNG (ENOSPC, short write, or EIO on sync). Equal seeds over
// equal operation sequences fault identically. everyN < 1 disarms.
func (in *Injector) SeedSchedule(seed int64, everyN int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if everyN < 1 {
		in.rng = nil
		return
	}
	in.rng = rand.New(rand.NewSource(seed))
	in.every = everyN
}

// Fired returns a copy of the fired-fault log, one line per injected
// failure, in firing order.
func (in *Injector) Fired() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, len(in.fired))
	copy(out, in.fired)
	return out
}

// fail logs and builds the injected error for one firing.
//
// in.mu is held by the caller.
func (in *Injector) fail(op Op, path string, err error) error {
	if err == nil {
		err = ErrInjected
	}
	ie := &InjectedError{Op: op, Path: path, Err: err}
	in.fired = append(in.fired, ie.Error())
	return ie
}

// decide consults the schedule for a non-write operation; nil means pass.
func (in *Injector) decide(op Op, path string) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range in.rules {
		if r.Op != op || !strings.Contains(path, r.Path) || r.done {
			continue
		}
		if r.seen < r.After {
			r.seen++
			continue
		}
		if !r.Sticky {
			r.done = true
		}
		return in.fail(op, path, r.Err)
	}
	if in.rng != nil && op == OpSync && in.rng.Intn(in.every) == 0 {
		return in.fail(op, path, syscall.EIO)
	}
	return nil
}

// decideWrite consults the schedule for a write of len(p) == size bytes.
// It returns how many bytes to let through and the error to return after
// them; (size, nil) means the write passes untouched.
func (in *Injector) decideWrite(path string, size int) (int, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range in.rules {
		if r.Op != OpWrite || !strings.Contains(path, r.Path) || r.done {
			continue
		}
		if r.Kind == KindFailAfter {
			if !r.armed {
				r.remaining = r.N
				r.armed = true
			}
			if r.remaining >= int64(size) {
				r.remaining -= int64(size)
				continue
			}
			allow := int(r.remaining)
			r.remaining = 0
			return allow, in.fail(OpWrite, path, r.Err)
		}
		if r.seen < r.After {
			r.seen++
			continue
		}
		if !r.Sticky {
			r.done = true
		}
		switch r.Kind {
		case KindShortWrite:
			n := int(r.N)
			if r.N == 0 {
				n = size / 2
			}
			if n >= size {
				n = size - 1
			}
			if n < 0 {
				n = 0
			}
			err := r.Err
			if err == nil {
				err = io.ErrShortWrite
			}
			return n, in.fail(OpWrite, path, err)
		default:
			return 0, in.fail(OpWrite, path, r.Err)
		}
	}
	if in.rng != nil && in.rng.Intn(in.every) == 0 {
		if in.rng.Intn(2) == 0 {
			return 0, in.fail(OpWrite, path, syscall.ENOSPC)
		}
		return size / 2, in.fail(OpWrite, path, io.ErrShortWrite)
	}
	return size, nil
}

// --- FS implementation ----------------------------------------------------

// MkdirAll implements FS.
func (in *Injector) MkdirAll(path string, perm os.FileMode) error {
	if err := in.decide(OpMkdir, path); err != nil {
		return err
	}
	return in.base.MkdirAll(path, perm)
}

// Open implements FS.
func (in *Injector) Open(name string) (File, error) {
	if err := in.decide(OpOpen, name); err != nil {
		return nil, err
	}
	f, err := in.base.Open(name)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f}, nil
}

// OpenFile implements FS.
func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := in.decide(OpOpen, name); err != nil {
		return nil, err
	}
	f, err := in.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f}, nil
}

// CreateTemp implements FS.
func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	if err := in.decide(OpCreate, dir+"/"+pattern); err != nil {
		return nil, err
	}
	f, err := in.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f}, nil
}

// Rename implements FS. A KindTornRename rule leaves oldpath in place and
// newpath untouched — the crash point just before the atomic commit.
func (in *Injector) Rename(oldpath, newpath string) error {
	if err := in.decide(OpRename, newpath); err != nil {
		return err
	}
	return in.base.Rename(oldpath, newpath)
}

// Remove implements FS.
func (in *Injector) Remove(name string) error {
	if err := in.decide(OpRemove, name); err != nil {
		return err
	}
	return in.base.Remove(name)
}

// Truncate implements FS.
func (in *Injector) Truncate(name string, size int64) error {
	if err := in.decide(OpTruncate, name); err != nil {
		return err
	}
	return in.base.Truncate(name, size)
}

// injFile threads write/sync/close operations back through the schedule.
type injFile struct {
	in *Injector
	f  File
}

func (f *injFile) Read(p []byte) (int, error) { return f.f.Read(p) }

func (f *injFile) Write(p []byte) (int, error) {
	allow, err := f.in.decideWrite(f.f.Name(), len(p))
	if err == nil {
		return f.f.Write(p)
	}
	n := 0
	if allow > 0 {
		// The allowed prefix really reaches the file: a short write tears
		// the record on disk, exactly like a crash mid-write.
		n, _ = f.f.Write(p[:allow])
	}
	return n, err
}

func (f *injFile) Sync() error {
	if err := f.in.decide(OpSync, f.f.Name()); err != nil {
		return err
	}
	return f.f.Sync()
}

func (f *injFile) Close() error {
	if err := f.in.decide(OpClose, f.f.Name()); err != nil {
		_ = f.f.Close() //moma:errsink-ok fault injection: the scheduled error replaces the close result; the real fd still closes
		return err
	}
	return f.f.Close()
}

func (f *injFile) Name() string { return f.f.Name() }

// --- script parsing -------------------------------------------------------

// ParseScript parses a comma-separated fault schedule of the form
//
//	op:pathsubstr:after:kind[:n]
//
// op is one of open, create, write, sync, close, rename, remove, truncate,
// mkdir; pathsubstr is a substring the operation's path must contain (empty
// matches all); after is the number of matching operations that pass before
// the fault fires; kind is one of err, enospc, eio, short, failafter, torn,
// with a trailing "!" marking the rule sticky (failafter is inherently
// sticky); n is the byte count for short and failafter.
//
// Examples:
//
//	write:wal.jsonl:6:enospc!        the 7th wal write and all later ones fail ENOSPC
//	sync:snapshot:0:eio              the first snapshot fsync fails EIO
//	rename:snapshot:0:torn           the snapshot publish crashes before the commit
//	write:wal.jsonl:0:failafter:4096 the wal accepts 4 KiB more, then the disk is full
func ParseScript(script string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(script, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 4 || len(fields) > 5 {
			return nil, fmt.Errorf("faultfs: bad rule %q (want op:path:after:kind[:n])", part)
		}
		op, err := parseOp(fields[0])
		if err != nil {
			return nil, err
		}
		after, err := strconv.Atoi(fields[2])
		if err != nil || after < 0 {
			return nil, fmt.Errorf("faultfs: bad rule %q: after %q must be a non-negative integer", part, fields[2])
		}
		kindName := fields[3]
		sticky := strings.HasSuffix(kindName, "!")
		kindName = strings.TrimSuffix(kindName, "!")
		spec, ok := kindNames[kindName]
		if !ok {
			return nil, fmt.Errorf("faultfs: bad rule %q: unknown kind %q", part, kindName)
		}
		var n int64
		if len(fields) == 5 {
			n, err = strconv.ParseInt(fields[4], 10, 64)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("faultfs: bad rule %q: n %q must be a non-negative integer", part, fields[4])
			}
		}
		if spec.kind == KindFailAfter {
			sticky = true
		}
		if spec.kind == KindTornRename && op != OpRename {
			return nil, fmt.Errorf("faultfs: bad rule %q: torn applies to rename only", part)
		}
		rules = append(rules, Rule{
			Op: op, Path: fields[1], After: after,
			Kind: spec.kind, N: n, Err: spec.err, Sticky: sticky,
		})
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("faultfs: empty fault script")
	}
	return rules, nil
}
