package faultfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	var fs FS = OS{}
	if err := fs.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := fs.OpenFile(filepath.Join(dir, "sub", "a"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello\n")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(filepath.Join(dir, "sub", "a"), filepath.Join(dir, "sub", "b")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Truncate(filepath.Join(dir, "sub", "b"), 5); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "sub", "b"))
	if err != nil || string(data) != "hello" {
		t.Fatalf("read back %q, %v", data, err)
	}
	if err := fs.Remove(filepath.Join(dir, "sub", "b")); err != nil {
		t.Fatal(err)
	}
}

// write opens path through the FS and writes p, returning the write error.
func write(t *testing.T, fs FS, path string, p []byte) (int, error) {
	t.Helper()
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close() //moma:errsink-ok test helper; the write error is the assertion target
	return f.Write(p)
}

func TestInjectENOSPCAfterN(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS{})
	inj.Inject(Rule{Op: OpWrite, Path: "wal", After: 2, Err: syscall.ENOSPC, Sticky: true})
	path := filepath.Join(dir, "wal.jsonl")
	for i := 0; i < 2; i++ {
		if _, err := write(t, inj, path, []byte("ok\n")); err != nil {
			t.Fatalf("write %d should pass: %v", i, err)
		}
	}
	n, err := write(t, inj, path, []byte("boom\n"))
	if n != 0 || !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, ErrInjected) {
		t.Fatalf("3rd write: n=%d err=%v, want injected ENOSPC", n, err)
	}
	// Sticky: still failing.
	if _, err := write(t, inj, path, []byte("boom\n")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("4th write should stay failed: %v", err)
	}
	// Other paths unaffected.
	if _, err := write(t, inj, filepath.Join(dir, "other"), []byte("ok\n")); err != nil {
		t.Fatalf("unmatched path must pass: %v", err)
	}
	if fired := inj.Fired(); len(fired) != 2 {
		t.Fatalf("fired log = %v, want 2 entries", fired)
	}
}

func TestInjectShortWrite(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(nil)
	inj.Inject(Rule{Op: OpWrite, Kind: KindShortWrite, N: 4})
	path := filepath.Join(dir, "f")
	n, err := write(t, inj, path, []byte("0123456789"))
	if n != 4 || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	// The torn prefix really reached the file.
	data, _ := os.ReadFile(path)
	if string(data) != "0123" {
		t.Fatalf("on-disk bytes %q, want torn prefix", data)
	}
	// One-shot: the next write passes.
	if _, err := write(t, inj, path, []byte("rest")); err != nil {
		t.Fatalf("one-shot rule must clear: %v", err)
	}
}

func TestInjectFailAfterBytes(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(nil)
	inj.Inject(Rule{Op: OpWrite, Kind: KindFailAfter, N: 10, Err: syscall.ENOSPC})
	path := filepath.Join(dir, "f")
	if n, err := write(t, inj, path, []byte("0123456")); n != 7 || err != nil {
		t.Fatalf("within budget: n=%d err=%v", n, err)
	}
	// Crosses the budget: 3 bytes pass, then ENOSPC.
	n, err := write(t, inj, path, []byte("abcdef"))
	if n != 3 || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("crossing write: n=%d err=%v", n, err)
	}
	// Exhausted: everything fails.
	if n, err := write(t, inj, path, []byte("x")); n != 0 || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("post-budget write: n=%d err=%v", n, err)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "0123456abc" {
		t.Fatalf("on-disk bytes %q, want exactly the 10-byte budget", data)
	}
}

func TestInjectSyncAndTornRename(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(nil)
	inj.Inject(
		Rule{Op: OpSync, Path: "snap", Err: syscall.EIO},
		Rule{Op: OpRename, Path: "snap", Kind: KindTornRename},
	)
	src := filepath.Join(dir, "snap.tmp")
	dst := filepath.Join(dir, "snap")
	f, err := inj.OpenFile(src, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("data"))
	if err := f.Sync(); err == nil || !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync fault: %v", err)
	}
	f.Close()
	if err := inj.Rename(src, dst); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn rename: %v", err)
	}
	if _, err := os.Stat(src); err != nil {
		t.Error("torn rename must leave the source in place")
	}
	if _, err := os.Stat(dst); !os.IsNotExist(err) {
		t.Error("torn rename must not touch the destination")
	}
}

func TestSeedScheduleDeterministic(t *testing.T) {
	run := func(seed int64) []string {
		dir := t.TempDir()
		inj := NewInjector(nil)
		inj.SeedSchedule(seed, 3)
		path := filepath.Join(dir, "f")
		for i := 0; i < 40; i++ {
			write(t, inj, path, []byte("record\n"))
		}
		// The fired log embeds the (per-run) temp path; compare the
		// schedule itself, not the directory names.
		fired := inj.Fired()
		for i := range fired {
			fired[i] = strings.ReplaceAll(fired[i], dir, "")
		}
		return fired
	}
	a, b := run(7), run(7)
	if len(a) == 0 {
		t.Fatal("seeded schedule fired nothing over 40 writes at 1/3")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed diverged: %d vs %d faults", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestParseScript(t *testing.T) {
	rules, err := ParseScript("write:wal.jsonl:6:enospc!, sync:snapshot:0:eio, rename:snapshot:0:torn, write::0:failafter:4096")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 4 {
		t.Fatalf("parsed %d rules, want 4", len(rules))
	}
	r := rules[0]
	if r.Op != OpWrite || r.Path != "wal.jsonl" || r.After != 6 || r.Kind != KindErr ||
		!errors.Is(r.Err, syscall.ENOSPC) || !r.Sticky {
		t.Errorf("rule 0 = %+v", r)
	}
	if rules[1].Op != OpSync || !errors.Is(rules[1].Err, syscall.EIO) || rules[1].Sticky {
		t.Errorf("rule 1 = %+v", rules[1])
	}
	if rules[2].Kind != KindTornRename {
		t.Errorf("rule 2 = %+v", rules[2])
	}
	if rules[3].Kind != KindFailAfter || rules[3].N != 4096 || !rules[3].Sticky {
		t.Errorf("rule 3 = %+v", rules[3])
	}

	for _, bad := range []string{
		"", "write:wal:x:enospc", "frob:wal:0:enospc", "write:wal:0:nope",
		"write:wal:0", "sync:wal:0:torn", "write:wal:0:short:abc",
	} {
		if _, err := ParseScript(bad); err == nil {
			t.Errorf("ParseScript(%q) should fail", bad)
		}
	}
}
