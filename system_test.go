package moma

import (
	"fmt"
	"sync"
	"testing"
)

// TestSystemConcurrentUse exercises the System's shared namespace from many
// goroutines at once — scripts rebinding against the current sets while
// other goroutines register new sets and run matchers. Under -race this
// proves the Figure-3 architecture is safe for concurrent use, matching the
// documented guarantee of its stores.
func TestSystemConcurrentUse(t *testing.T) {
	sys := NewSystem()
	dblp := NewObjectSet(LDS{Source: "DBLP", Type: Publication})
	dblp.AddNew("d1", map[string]string{"title": "Generic Schema Matching with Cupid"})
	dblp.AddNew("d2", map[string]string{"title": "A formal perspective on the view selection problem"})
	acm := NewObjectSet(LDS{Source: "ACM", Type: Publication})
	acm.AddNew("a1", map[string]string{"title": "Generic Schema Matching with Cupid"})
	acm.AddNew("a2", map[string]string{"title": "The view selection problem"})
	if err := sys.AddObjectSet("DBLP.Publication", dblp); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddObjectSet("ACM.Publication", acm); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddMapping("Existing", IdentityOf(dblp)); err != nil {
		t.Fatal(err)
	}

	const rounds = 20
	var wg sync.WaitGroup
	wg.Add(3)
	errs := make(chan error, 3*rounds)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := sys.RunScript("$T = attrMatch (DBLP.Publication, ACM.Publication, Trigram, 0.8, \"[title]\", \"[title]\")\nRETURN $T\n"); err != nil {
				errs <- fmt.Errorf("RunScript: %w", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			set := NewObjectSet(LDS{Source: PDS(fmt.Sprintf("S%d", i)), Type: Publication})
			set.AddNew(ID(fmt.Sprintf("x%d", i)), map[string]string{"title": "concurrent"})
			if err := sys.AddObjectSet(fmt.Sprintf("S%d.Publication", i), set); err != nil {
				errs <- fmt.Errorf("AddObjectSet: %w", err)
				return
			}
			if _, ok := sys.ObjectSetByName(fmt.Sprintf("S%d.Publication", i)); !ok {
				errs <- fmt.Errorf("set S%d vanished", i)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		m := &AttributeMatcher{
			MatcherName: "title-trigram", AttrA: "title", AttrB: "title",
			Sim: Trigram, Threshold: 0.8, Workers: 4,
		}
		for i := 0; i < rounds; i++ {
			if _, err := sys.MatchAndStore(m, "DBLP.Publication", "ACM.Publication", fmt.Sprintf("Same%d", i)); err != nil {
				errs <- fmt.Errorf("MatchAndStore: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if _, ok := sys.MappingByName("Same0"); !ok {
		t.Error("stored mapping missing after concurrent run")
	}
}
