package moma

// One benchmark per table and figure of the paper's evaluation, plus
// microbenchmarks for the operators and substrates they exercise. The
// table benchmarks run against the reduced test-scale dataset so that
// `go test -bench=.` finishes quickly; `cmd/moma-bench` runs the same
// experiments at the paper's full Table 1 scale. Set MOMA_BENCH_SCALE=paper
// to run these benchmarks at full scale too.

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/faultfs"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/sources"
	"repro/internal/store"
)

var (
	benchOnce    sync.Once
	benchSetting *experiments.Setting
)

// benchSettingFor returns the shared experiment setting (built once).
func benchSettingFor(b *testing.B) *experiments.Setting {
	b.Helper()
	benchOnce.Do(func() {
		cfg := sources.SmallConfig()
		if os.Getenv("MOMA_BENCH_SCALE") == "paper" {
			cfg = sources.PaperConfig()
		}
		benchSetting = experiments.NewSetting(cfg)
	})
	return benchSetting
}

// benchTable runs one table reproduction per iteration and reports a key
// F-measure as a benchmark metric.
func benchTable(b *testing.B, run func(*experiments.Setting) (*experiments.TableResult, error), metric string) {
	s := benchSettingFor(b)
	b.ResetTimer()
	var last *experiments.TableResult
	for i := 0; i < b.N; i++ {
		r, err := run(s)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if last != nil && metric != "" {
		if res, ok := last.Metrics[metric]; ok {
			b.ReportMetric(res.F1*100, "F1%")
		}
	}
}

func BenchmarkTable1Counts(b *testing.B) {
	benchTable(b, experiments.Table1, "")
}

func BenchmarkTable2AttributeMatchers(b *testing.B) {
	benchTable(b, experiments.Table2, "Merge")
}

func BenchmarkTable3ComposePaths(b *testing.B) {
	benchTable(b, experiments.Table3, "GS-ACM compose")
}

func BenchmarkTable4VenueNeighborhood(b *testing.B) {
	benchTable(b, experiments.Table4, "overall/Best-1")
}

func BenchmarkTable5PublicationNeighborhood(b *testing.B) {
	benchTable(b, experiments.Table5, "overall/Merge")
}

func BenchmarkTable6AuthorNeighborhood(b *testing.B) {
	benchTable(b, experiments.Table6, "Merge")
}

func BenchmarkTable7DBLPGSNeighborhood(b *testing.B) {
	benchTable(b, experiments.Table7, "Merge")
}

func BenchmarkTable8GSACMNeighborhood(b *testing.B) {
	benchTable(b, experiments.Table8, "Merge")
}

func BenchmarkTable9DuplicateAuthors(b *testing.B) {
	benchTable(b, experiments.Table9, "")
}

func BenchmarkTable10Summary(b *testing.B) {
	benchTable(b, experiments.Table10, "pubs DBLP-ACM")
}

func BenchmarkFigure4Merge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6Compose(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9Neighborhood(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure9(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8Hub(b *testing.B) {
	benchTable(b, experiments.Figure8Hub, "via hub DBLP")
}

func BenchmarkAblationMergeMissing(b *testing.B) {
	benchTable(b, experiments.AblationMergeMissing, "Min-0 (intersection)")
}

func BenchmarkAblationComposeAgg(b *testing.B) {
	benchTable(b, experiments.AblationComposeAgg, "Relative")
}

func BenchmarkAblationBlocking(b *testing.B) {
	benchTable(b, experiments.AblationBlocking, "")
}

func BenchmarkAblationHubChoice(b *testing.B) {
	benchTable(b, experiments.AblationHubChoice, "via clean hub (DBLP)")
}

func BenchmarkExtensionGSSelfMapping(b *testing.B) {
	benchTable(b, experiments.ExtensionGSSelfMapping, "With self-mapping")
}

func BenchmarkExtensionSelfTuning(b *testing.B) {
	benchTable(b, experiments.ExtensionSelfTuning, "Grid best")
}

// --- Operator microbenchmarks -------------------------------------------

// syntheticSame builds a same-mapping with n correspondences fanning out
// over sqrt(n) domain objects.
func syntheticSame(n int) *Mapping {
	a := LDS{Source: "A", Type: Publication}
	c := LDS{Source: "C", Type: Publication}
	m := NewSameMapping(a, c)
	side := 1
	for side*side < n {
		side++
	}
	for i := 0; i < n; i++ {
		m.Add(ID(fmt.Sprintf("a%d", i%side)), ID(fmt.Sprintf("c%d", i/side)), 0.5+float64(i%50)/100)
	}
	return m
}

func syntheticSecond(n int) *Mapping {
	c := LDS{Source: "C", Type: Publication}
	b := LDS{Source: "B", Type: Publication}
	m := NewSameMapping(c, b)
	side := 1
	for side*side < n {
		side++
	}
	for i := 0; i < n; i++ {
		m.Add(ID(fmt.Sprintf("c%d", i/side)), ID(fmt.Sprintf("b%d", i%side)), 0.5+float64(i%50)/100)
	}
	return m
}

func BenchmarkMergeOperator(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		m1 := syntheticSame(n)
		m2 := syntheticSame(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Merge(AvgCombiner, m1, m2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkComposeOperator(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		m1 := syntheticSame(n)
		m2 := syntheticSecond(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Compose(m1, m2, MinCombiner, AggRelative); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkComposeJoinAlgorithms(b *testing.B) {
	m1 := syntheticSame(10000)
	m2 := syntheticSecond(10000)
	for _, alg := range []JoinAlgorithm{HashJoin, SortMergeJoin} {
		b.Run(alg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ComposeVia(m1, m2, MinCombiner, AggRelative, alg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Large-scale mapping-operator benchmarks ----------------------------
//
// The columnar mapping core is sized for correspondence sets far beyond the
// paper's evaluation; these benchmarks exercise compose, merge and selection
// at 100k-1M rows with controlled fan-out so the work stays linear in n.
// Skipped in -short runs (CI runs them once in a dedicated step and the
// mapping-operator compare step watches them for regressions).

// benchChainMappings builds m1: a_{i/2} -> c_i and m2: c_i -> b_{i/2}, each
// with n correspondences: every output pair of their composition is reached
// via exactly two compose paths, so the join produces n paths and n/2 output
// rows — linear work at any n.
func benchChainMappings(n int) (*Mapping, *Mapping) {
	a := LDS{Source: "A", Type: Publication}
	c := LDS{Source: "C", Type: Publication}
	bb := LDS{Source: "B", Type: Publication}
	m1 := NewSameMapping(a, c)
	m2 := NewSameMapping(c, bb)
	for i := 0; i < n; i++ {
		s := 0.5 + float64(i%50)/100
		m1.Add(ID(fmt.Sprintf("a%d", i/2)), ID(fmt.Sprintf("c%d", i)), s)
		m2.Add(ID(fmt.Sprintf("c%d", i)), ID(fmt.Sprintf("b%d", i/2)), s)
	}
	return m1, m2
}

// benchOverlapMappings builds two mappings over the same sources whose
// correspondence sets overlap by half — the merge shape of combining two
// matcher results.
func benchOverlapMappings(n int) (*Mapping, *Mapping) {
	a := LDS{Source: "A", Type: Publication}
	bb := LDS{Source: "B", Type: Publication}
	m1 := NewSameMapping(a, bb)
	m2 := NewSameMapping(a, bb)
	for i := 0; i < n; i++ {
		s := 0.5 + float64(i%50)/100
		m1.Add(ID(fmt.Sprintf("a%d", i)), ID(fmt.Sprintf("b%d", i)), s)
		j := i + n/2
		m2.Add(ID(fmt.Sprintf("a%d", j)), ID(fmt.Sprintf("b%d", j)), s)
	}
	return m1, m2
}

// benchFanoutMapping builds a mapping with fan-out 4 per domain object —
// the shape Best-n selection grouping works over.
func benchFanoutMapping(n int) *Mapping {
	a := LDS{Source: "A", Type: Publication}
	bb := LDS{Source: "B", Type: Publication}
	m := NewSameMapping(a, bb)
	for i := 0; i < n; i++ {
		m.Add(ID(fmt.Sprintf("a%d", i/4)), ID(fmt.Sprintf("b%d", i)), 0.5+float64(i%50)/100)
	}
	return m
}

var mappingBenchSizes = []struct {
	name string
	n    int
}{{"n=100k", 100000}, {"n=1M", 1000000}}

func BenchmarkMappingCompose(b *testing.B) {
	if testing.Short() {
		b.Skip("large-scale benchmark; run without -short")
	}
	for _, sz := range mappingBenchSizes {
		b.Run(sz.name, func(b *testing.B) {
			m1, m2 := benchChainMappings(sz.n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := Compose(m1, m2, MinCombiner, AggRelative)
				if err != nil {
					b.Fatal(err)
				}
				if out.Len() != sz.n/2 {
					b.Fatalf("compose produced %d rows, want %d", out.Len(), sz.n/2)
				}
			}
		})
	}
}

func BenchmarkMappingMerge(b *testing.B) {
	if testing.Short() {
		b.Skip("large-scale benchmark; run without -short")
	}
	for _, sz := range mappingBenchSizes {
		b.Run(sz.name, func(b *testing.B) {
			m1, m2 := benchOverlapMappings(sz.n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := Merge(AvgCombiner, m1, m2)
				if err != nil {
					b.Fatal(err)
				}
				if out.Len() != sz.n+sz.n/2 {
					b.Fatalf("merge produced %d rows, want %d", out.Len(), sz.n+sz.n/2)
				}
			}
		})
	}
}

func BenchmarkMappingSelect(b *testing.B) {
	if testing.Short() {
		b.Skip("large-scale benchmark; run without -short")
	}
	sel := BestN{N: 1, Side: DomainSide}
	for _, sz := range mappingBenchSizes {
		b.Run(sz.name, func(b *testing.B) {
			m := benchFanoutMapping(sz.n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := sel.Apply(m)
				if out.Len() != (sz.n+3)/4 {
					b.Fatalf("select kept %d rows, want %d", out.Len(), (sz.n+3)/4)
				}
			}
		})
	}
}

func BenchmarkSelectionBestN(b *testing.B) {
	m := syntheticSame(10000)
	sel := BestN{N: 1, Side: DomainSide}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel.Apply(m)
	}
}

func BenchmarkTrigram(b *testing.B) {
	t1 := "A formal perspective on the view selection problem"
	t2 := "A formal perspective on the view selection problem revisited"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Trigram(t1, t2)
	}
}

// BenchmarkTrigramProfiled measures the pair-scoring stage alone: profiles
// are built once (as a matcher does per attribute value) and only Compare
// runs per iteration. This is the per-pair cost inside a match workflow.
func BenchmarkTrigramProfiled(b *testing.B) {
	t1 := "A formal perspective on the view selection problem"
	t2 := "A formal perspective on the view selection problem revisited"
	ps, ok := ProfiledOf(Trigram)
	if !ok {
		b.Fatal("Trigram has no profiled twin")
	}
	pa, pb := ps.Profile(t1), ps.Profile(t2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps.Compare(pa, pb)
	}
}

func BenchmarkPersonName(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PersonName("A. Thor", "Andreas Thor")
	}
}

func BenchmarkAttributeMatcherBlocked(b *testing.B) {
	s := benchSettingFor(b)
	m := &AttributeMatcher{
		AttrA: "title", AttrB: "name", Sim: Trigram, Threshold: 0.82,
		Blocker: TokenBlocking{AttrA: "title", AttrB: "name", MinShared: 2},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Match(s.D.DBLP.Pubs, s.D.ACM.Pubs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAttributeMatcherStreamWorkers measures the streaming scoring
// pipeline at different parallelism levels: candidates flow from the
// blocker through batched worker channels, and only kept correspondences
// are materialized (no O(n·m) scored-pair slice).
func BenchmarkAttributeMatcherStreamWorkers(b *testing.B) {
	s := benchSettingFor(b)
	for _, workers := range []int{1, 4} {
		m := &AttributeMatcher{
			AttrA: "title", AttrB: "name", Sim: Trigram, Threshold: 0.82,
			Blocker: TokenBlocking{AttrA: "title", AttrB: "name", MinShared: 2},
			Workers: workers,
		}
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := m.Match(s.D.DBLP.Pubs, s.D.ACM.Pubs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

var (
	bench100kOnce    sync.Once
	bench100kDataset *sources.Dataset
)

// bench100kDatasetFor builds (once) the large-scale moma-gen world: the
// small-config sources with Google Scholar padded to 100k publications —
// the scale where interned blocking columns and uint32 postings matter.
func bench100kDatasetFor(b *testing.B) *sources.Dataset {
	b.Helper()
	bench100kOnce.Do(func() {
		cfg := sources.SmallConfig()
		cfg.GSTargetPublications = 100000
		cfg.GSNoiseDocs = 20000
		bench100kDataset = sources.Generate(cfg)
	})
	return bench100kDataset
}

// BenchmarkAttributeMatcherBlocked100k is the large-scale blocked match:
// every DBLP publication probes a token index over 100k Google Scholar
// entries, and the 100k-value profile column is rebuilt per match. Skipped
// in -short runs (CI runs it once in a dedicated step).
func BenchmarkAttributeMatcherBlocked100k(b *testing.B) {
	if testing.Short() {
		b.Skip("large-scale benchmark; run without -short")
	}
	d := bench100kDatasetFor(b)
	m := &AttributeMatcher{
		AttrA: "title", AttrB: "title", Sim: Trigram, Threshold: 0.82,
		Blocker: TokenBlocking{AttrA: "title", AttrB: "title", MinShared: 2},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Match(d.DBLP.Pubs, d.GS.Pubs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlockerPairsEach100k isolates large-scale candidate generation
// over the 100k-document ordinal index (cached across iterations, as in a
// multi-matcher workflow).
func BenchmarkBlockerPairsEach100k(b *testing.B) {
	if testing.Short() {
		b.Skip("large-scale benchmark; run without -short")
	}
	d := bench100kDatasetFor(b)
	bl := TokenBlocking{AttrA: "title", AttrB: "title", MinShared: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		bl.PairsEach(d.DBLP.Pubs, d.GS.Pubs, func(p Pair) bool {
			n++
			return true
		})
		if n == 0 {
			b.Fatal("no candidates")
		}
	}
}

// BenchmarkBlockerPairsEach isolates candidate generation: the streaming
// entry point visits every candidate without materializing the pair slice
// that Pairs builds.
func BenchmarkBlockerPairsEach(b *testing.B) {
	s := benchSettingFor(b)
	blockers := []Blocker{
		TokenBlocking{AttrA: "title", AttrB: "name", MinShared: 2},
		SortedNeighborhood{AttrA: "title", AttrB: "name", Window: 5},
	}
	for _, bl := range blockers {
		b.Run(bl.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n := 0
				bl.PairsEach(s.D.DBLP.Pubs, s.D.ACM.Pubs, func(p Pair) bool {
					n++
					return true
				})
				if n == 0 {
					b.Fatal("no candidates")
				}
			}
		})
	}
}

// BenchmarkAttributeMatcherBlockedUnprofiled is the same match with the
// measure hidden behind a closure, forcing the per-pair string path — the
// baseline the similarity-profile layer is measured against.
func BenchmarkAttributeMatcherBlockedUnprofiled(b *testing.B) {
	s := benchSettingFor(b)
	wrapped := func(x, y string) float64 { return Trigram(x, y) }
	m := &AttributeMatcher{
		AttrA: "title", AttrB: "name", Sim: wrapped, Threshold: 0.82,
		Blocker: TokenBlocking{AttrA: "title", AttrB: "name", MinShared: 2},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Match(s.D.DBLP.Pubs, s.D.ACM.Pubs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGSQueryCollection(b *testing.B) {
	s := benchSettingFor(b)
	q := NewGSQuery(s.D.GS)
	sub := s.D.DBLP.Pubs.Subset(s.D.DBLP.Pubs.IDs()[:50])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.CollectFor(sub, "title", 10)
	}
}

func BenchmarkScriptNhMatch(b *testing.B) {
	s := benchSettingFor(b)
	sys := NewSystem()
	if err := sys.LoadSource(s.D.DBLP); err != nil {
		b.Fatal(err)
	}
	if err := sys.AddMapping("DBLP.AuthorAuthor", IdentityOf(s.D.DBLP.Authors)); err != nil {
		b.Fatal(err)
	}
	src := "RETURN nhMatch (DBLP.CoAuthor, DBLP.AuthorAuthor, DBLP.CoAuthor)\n"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.RunScript(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDatasetGeneration(b *testing.B) {
	cfg := sources.SmallConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sources.Generate(cfg)
	}
}

// benchWALPutDelta measures the warm logged-delta path — lock, JSON append,
// flush, AddMax — against a repository whose filesystem goes through fsys.
func benchWALPutDelta(b *testing.B, fsys faultfs.FS) {
	repo, err := store.OpenRepositoryFS(b.TempDir(), fsys)
	if err != nil {
		b.Fatal(err)
	}
	defer repo.Close()
	repo.SetAutoCompact(0, 0) // pure WAL appends; no compaction inside the loop
	dom := model.LDS{Source: "DBLP", Type: model.Publication}
	rng := model.LDS{Source: "ACM", Type: model.Publication}
	// Pre-interned IDs and a reused rows buffer: the measurement is the
	// store's append path, not workload-side allocation.
	ids := make([]model.ID, 256)
	for i := range ids {
		ids[i] = model.ID(fmt.Sprintf("obj-%03d", i))
	}
	rows := make([]mapping.Correspondence, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range rows {
			k := (i*len(rows) + j) % len(ids)
			rows[j] = mapping.Correspondence{Domain: ids[k], Range: ids[(k+1)%len(ids)], Sim: 0.5}
		}
		if err := repo.PutDelta("live.bench", dom, rng, model.SameMappingType, rows); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALPutDelta pins the cost of the faultfs seam on the warm write
// path: the direct OS passthrough and a disarmed injector must track each
// other, and neither may allocate beyond the append itself (CI compares
// both ns/op and allocs/op across commits).
func BenchmarkWALPutDelta(b *testing.B) {
	b.Run("fs=os", func(b *testing.B) { benchWALPutDelta(b, faultfs.OS{}) })
	b.Run("fs=injector-idle", func(b *testing.B) { benchWALPutDelta(b, faultfs.NewInjector(nil)) })
}
