package moma

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/live"
	"repro/internal/mapping"
	"repro/internal/match"
	"repro/internal/model"
	"repro/internal/script"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/workflow"
)

// System wires the MOMA architecture of Figure 3 together: the mapping
// repository, the mapping cache, the matcher library, the similarity
// registry, the workflow engine and the script interpreter, all sharing
// one namespace of sources and mappings.
type System struct {
	// Repo is the mapping repository (association and same-mappings).
	Repo *Store
	// Cache holds intermediate same-mappings of running workflows.
	Cache *Store
	// Matchers is the extensible matcher library.
	Matchers *MatcherRegistry
	// Sims resolves similarity-function names.
	Sims *SimRegistry

	// mu guards sets, resolvers and binding: the system is the shared
	// Figure-3 architecture, and like Store it must be safe for concurrent
	// use (concurrent RunScript / AddObjectSet / RunWorkflow calls).
	mu        sync.RWMutex
	sets      map[string]*ObjectSet
	resolvers map[string]*LiveResolver
	binding   *script.Binding
	engine    *workflow.Engine
}

// NewSystem returns a system with in-memory repository and cache.
func NewSystem() *System {
	return newSystem(store.NewRepository())
}

// NewSystemWithRepository returns a system over a caller-built repository —
// one opened through store.OpenRepositoryFS with a fault injector
// (cmd/moma-serve's -fault-script), custom auto-compaction settings, or any
// other non-default store configuration. A nil repo falls back to a fresh
// in-memory repository.
func NewSystemWithRepository(repo *Store) *System {
	if repo == nil {
		repo = store.NewRepository()
	}
	return newSystem(repo)
}

// OpenSystem returns a system whose repository persists under dir (write-
// ahead log plus snapshot; see Store.Compact).
func OpenSystem(dir string) (*System, error) {
	repo, err := store.OpenRepository(dir)
	if err != nil {
		return nil, err
	}
	return newSystem(repo), nil
}

func newSystem(repo *store.Store) *System {
	s := &System{
		Repo:      repo,
		Cache:     store.NewCache(0),
		Matchers:  match.NewRegistry(),
		Sims:      sim.NewRegistry(),
		sets:      make(map[string]*ObjectSet),
		resolvers: make(map[string]*LiveResolver),
	}
	s.engine = &workflow.Engine{Repo: s.Repo, Cache: s.Cache}
	s.rebindLocked()
	return s
}

// rebindLocked refreshes the script binding from the current stores and
// sets. Callers must hold mu (newSystem excepted: nothing else can see the
// system yet).
func (s *System) rebindLocked() {
	b := script.NewBinding()
	b.Sims = s.Sims
	for _, name := range s.Repo.Names() {
		if m, ok := s.Repo.Get(name); ok {
			b.BindMapping(name, m)
		}
	}
	for _, name := range s.Cache.Names() {
		if m, ok := s.Cache.Get(name); ok {
			b.BindMapping(name, m)
		}
	}
	for name, set := range s.sets {
		b.BindSet(name, set)
	}
	s.binding = b
}

// AddObjectSet registers an object set under a qualified name such as
// "DBLP.Author", making it visible to scripts and constraints.
func (s *System) AddObjectSet(name string, set *ObjectSet) error {
	if name == "" || set == nil {
		return fmt.Errorf("moma: AddObjectSet needs a name and a set")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.sets[name]; dup {
		return fmt.Errorf("moma: object set %q already registered", name)
	}
	s.sets[name] = set
	return nil
}

// ObjectSetByName returns a registered object set.
func (s *System) ObjectSetByName(name string) (*ObjectSet, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set, ok := s.sets[name]
	return set, ok
}

// RegisterResolver builds a live resolver over a registered object set and
// installs it under the set's name, making the set answerable online
// (System.Resolver, cmd/moma-serve). The resolver snapshots the set; route
// later updates through Resolver.Add / Resolver.Remove.
func (s *System) RegisterResolver(setName string, cfg LiveConfig) (*LiveResolver, error) {
	set, ok := s.ObjectSetByName(setName)
	if !ok {
		return nil, fmt.Errorf("moma: unknown object set %q", setName)
	}
	r, err := live.NewResolver(set, cfg)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.resolvers[setName]; dup {
		return nil, fmt.Errorf("moma: resolver for %q already registered", setName)
	}
	s.resolvers[setName] = r
	return r, nil
}

// Resolver returns the live resolver registered for the named set.
func (s *System) Resolver(setName string) (*LiveResolver, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.resolvers[setName]
	return r, ok
}

// ResolverNames lists the sets with registered resolvers, sorted.
func (s *System) ResolverNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.resolvers))
	for name := range s.resolvers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// AddMapping stores a mapping in the repository under name.
func (s *System) AddMapping(name string, m *Mapping) error {
	return s.Repo.Put(name, m)
}

// MappingByName resolves a mapping from cache first, then repository.
func (s *System) MappingByName(name string) (*Mapping, bool) {
	if m, ok := s.Cache.Get(name); ok {
		return m, true
	}
	return s.Repo.Get(name)
}

// RunScript parses and executes an iFuice-style script against the
// system's sources and mappings. Top-level assignments become cache
// entries, so later scripts (and workflows) can re-use them by name.
func (s *System) RunScript(src string) (Value, error) {
	s.mu.Lock()
	s.rebindLocked()
	binding := s.binding
	s.mu.Unlock()
	ip := script.New(binding)
	v, err := ip.RunSource(src)
	if err != nil {
		return v, err
	}
	// Persist script-created mappings into the cache for re-use: a later
	// script references $Titles of this run as Cache.Titles.
	parsed, perr := script.Parse(src)
	if perr == nil {
		for _, st := range parsed.Stmts {
			if assign, ok := st.(*script.Assign); ok {
				if val, ok := ip.Global(assign.Name); ok && val.Kind == script.MappingValue {
					// Best effort; a full cache is the only failure mode.
					_ = s.Cache.Put("Cache."+assign.Name, val.Mapping)
				}
			}
		}
	}
	return v, nil
}

// RunWorkflow executes a workflow on two registered object sets.
func (s *System) RunWorkflow(w *Workflow, setA, setB string) (*Mapping, error) {
	a, ok := s.ObjectSetByName(setA)
	if !ok {
		return nil, fmt.Errorf("moma: unknown object set %q", setA)
	}
	b, ok := s.ObjectSetByName(setB)
	if !ok {
		return nil, fmt.Errorf("moma: unknown object set %q", setB)
	}
	return s.engine.Run(w, a, b)
}

// Engine exposes the workflow engine (e.g. to register workflows as
// matchers in the library).
func (s *System) Engine() *Engine { return s.engine }

// MatchAndStore runs a matcher on two registered sets and stores the
// resulting same-mapping in the repository under mappingName.
func (s *System) MatchAndStore(m Matcher, setA, setB, mappingName string) (*Mapping, error) {
	a, ok := s.ObjectSetByName(setA)
	if !ok {
		return nil, fmt.Errorf("moma: unknown object set %q", setA)
	}
	b, ok := s.ObjectSetByName(setB)
	if !ok {
		return nil, fmt.Errorf("moma: unknown object set %q", setB)
	}
	res, err := m.Match(a, b)
	if err != nil {
		return nil, err
	}
	if mappingName != "" {
		if err := s.Repo.Put(mappingName, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// LoadSource registers all object sets and association mappings of a
// generated synthetic source under its canonical names (DBLP.Publication,
// DBLP.VenuePub, ...).
func (s *System) LoadSource(src *DataSource) error {
	name := string(src.Name)
	type namedSet struct {
		suffix string
		set    *ObjectSet
	}
	for _, ns := range []namedSet{
		{string(model.Publication), src.Pubs},
		{string(model.Author), src.Authors},
		{string(model.Venue), src.Venues},
	} {
		if ns.set == nil {
			continue
		}
		if err := s.AddObjectSet(name+"."+ns.suffix, ns.set); err != nil {
			return err
		}
	}
	type namedMap struct {
		suffix string
		m      *mapping.Mapping
	}
	for _, nm := range []namedMap{
		{"VenuePub", src.VenuePub},
		{"PubVenue", src.PubVenue},
		{"AuthorPub", src.AuthorPub},
		{"PubAuthor", src.PubAuthor},
		{"CoAuthor", src.CoAuthor},
	} {
		if nm.m == nil {
			continue
		}
		if err := s.Repo.Put(name+"."+nm.suffix, nm.m); err != nil {
			return err
		}
	}
	return nil
}

// Close releases the repository (flushes the write-ahead log when the
// system was opened with OpenSystem).
func (s *System) Close() error { return s.Repo.Close() }
