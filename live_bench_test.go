package moma

// Benchmarks for the online resolution subsystem. BenchmarkResolve pins the
// acceptance property of the live resolver: resolving one record against a
// warm indexed set does no full index rebuild — per-op time and allocations
// track the candidate count, not the set size. The vocabulary scales with
// the set so the expected candidates per query stay constant; compare the
// n=1000 and n=10000 allocation counts to see the independence.

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchLiveSet builds a synthetic publication set of n instances whose
// titles draw from a vocabulary proportional to n (constant token
// selectivity across scales).
func benchLiveSet(n int) *ObjectSet {
	rng := rand.New(rand.NewSource(20070107))
	vocabSize := n / 25
	if vocabSize < 20 {
		vocabSize = 20
	}
	vocab := make([]string, vocabSize)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("word%04d", i)
	}
	set := NewObjectSet(LDS{Source: "ACM", Type: Publication})
	for i := 0; i < n; i++ {
		title := ""
		for w := 0; w < 8; w++ {
			if w > 0 {
				title += " "
			}
			title += vocab[rng.Intn(len(vocab))]
		}
		set.AddNew(ID(fmt.Sprintf("p%06d", i)), map[string]string{
			"title": title,
			"year":  fmt.Sprintf("%d", 1994+i%10),
		})
	}
	return set
}

// benchLiveQueries derives query records from set members with light edits,
// so most queries block to a non-empty candidate set.
func benchLiveQueries(set *ObjectSet, n int) []*Instance {
	ids := set.IDs()
	out := make([]*Instance, 0, n)
	for i := 0; i < n; i++ {
		src := set.Get(ids[(i*37)%len(ids)])
		out = append(out, NewInstance(ID(fmt.Sprintf("q%04d", i)), map[string]string{
			"title": src.Attr("title") + " extra",
			"year":  src.Attr("year"),
		}))
	}
	return out
}

func benchResolverFor(b *testing.B, set *ObjectSet) *LiveResolver {
	b.Helper()
	r, err := NewLiveResolver(set, LiveConfig{
		MinShared: 3,
		Threshold: 0.7,
		Columns: []LiveColumn{
			{QueryAttr: "title", SetAttr: "title", Sim: Trigram, Weight: 3},
			{QueryAttr: "year", SetAttr: "year", Sim: YearSim, Weight: 1},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkResolve: single-record resolution against a warm resolver, at
// three set sizes with constant token selectivity. Allocations per op must
// stay flat from n=1000 through n=100000 (no set-sized work per query).
// The n=100000 case is the large-scale setting and is skipped in -short
// runs (CI runs it in a dedicated step).
func BenchmarkResolve(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		if n >= 100000 && testing.Short() {
			continue
		}
		set := benchLiveSet(n)
		r := benchResolverFor(b, set)
		queries := benchLiveQueries(set, 256)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			// Warm-up: touch every query once outside the timer.
			for _, q := range queries {
				r.Resolve(q)
			}
			b.ReportAllocs()
			b.ResetTimer()
			matches := 0
			for i := 0; i < b.N; i++ {
				matches += len(r.Resolve(queries[i%len(queries)]))
			}
			if b.N > len(queries) && matches == 0 {
				b.Fatal("benchmark queries never match; fixture broken")
			}
		})
	}
}

// BenchmarkResolveParallel: the same workload under GOMAXPROCS-way
// concurrency — resolvers serve concurrent readers without exclusive locks.
func BenchmarkResolveParallel(b *testing.B) {
	set := benchLiveSet(10000)
	r := benchResolverFor(b, set)
	queries := benchLiveQueries(set, 256)
	for _, q := range queries {
		r.Resolve(q)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			r.Resolve(queries[i%len(queries)])
			i++
		}
	})
}

// BenchmarkResolverAdd: the incremental update path — one instance indexed
// into a warm 10k resolver per op (ids rotate, so live size stays bounded
// via replacement).
func BenchmarkResolverAdd(b *testing.B) {
	set := benchLiveSet(10000)
	r := benchResolverFor(b, set)
	fresh := benchLiveSet(1000)
	ids := fresh.IDs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := fresh.Get(ids[i%len(ids)]).Clone()
		in.ID = ID(fmt.Sprintf("add%04d", i%len(ids)))
		if err := r.Add(in); err != nil {
			b.Fatal(err)
		}
	}
}
